(* Line-delimited protocol driver. Replies are byte-counted so clients
   can frame multi-line payloads without sentinels. *)

type reply = Ok_payload of string | Err of string | Bye

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_file path f =
  match read_file path with
  | src -> f src
  | exception Sys_error msg -> Err msg

let artifact_reply ?pool engine artifact path =
  with_file path (fun src ->
      match Engine.render ?pool engine artifact src with
      | Ok text -> Ok_payload text
      | Error msg -> Err msg)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, None)
  | Some i ->
    let arg = String.trim (String.sub line i (String.length line - i)) in
    (String.sub line 0 i, (if arg = "" then None else Some arg))

let handle ?pool engine line =
  let line = String.trim line in
  match split_command line with
  | "", None -> Err "empty request"
  | "QUIT", None -> Bye
  | "STATS", None -> Ok_payload (Engine.stats_report engine)
  | "METRICS", None -> Ok_payload (Engine.prometheus_report engine)
  | "PASSES", Some path ->
    with_file path (fun src -> Ok_payload (Engine.passes_report engine src))
  | "BATCH", Some args -> (
    match List.filter (fun s -> s <> "") (String.split_on_char ' ' args) with
    | [] | [ _ ] -> Err "BATCH needs an artifact and at least one file"
    | art :: paths -> (
      match Engine.artifact_of_string art with
      | None -> Err ("unknown artifact " ^ art)
      | Some artifact -> (
        let items =
          List.fold_left
            (fun acc path ->
              match acc with
              | Error _ as e -> e
              | Ok items -> (
                match read_file path with
                | src -> Ok ({ Batch.name = path; source = src } :: items)
                | exception Sys_error msg -> Error msg))
            (Ok []) paths
        in
        match items with
        | Error msg -> Err msg
        | Ok items ->
          let items = List.rev items in
          let domains = match pool with Some p -> Pool.size p | None -> 1 in
          let results =
            Batch.run ?pool ~domains ~engine ~artifacts:[ artifact ] items
          in
          let buf = Buffer.create 1024 in
          List.iter
            (fun ((item : Batch.item), r) ->
              Buffer.add_string buf (Printf.sprintf "== %s ==\n" item.Batch.name);
              match r with
              | Ok text -> Buffer.add_string buf text
              | Error msg -> Buffer.add_string buf ("error: " ^ msg ^ "\n"))
            results;
          Ok_payload (Buffer.contents buf))))
  | "TRACE", None -> (
    (* Drain whatever the ambient collector holds since the last TRACE
       (or since startup) as a Chrome trace-event JSON document. *)
    match Obs.Trace.current () with
    | None -> Err "tracing is not enabled in this server"
    | Some t ->
      let spans, events = Obs.Trace.drain t in
      Ok_payload (Obs.Export_chrome.render_parts spans events))
  | "RESET", None ->
    Engine.clear engine;
    Ok_payload "reset\n"
  | "PERSIST", None -> (
    (* Store status: root, live counters, and on-disk usage. *)
    match Engine.store engine with
    | None -> Ok_payload "no store attached\n"
    | Some s ->
      let entries, bytes = Store.Disk.usage s in
      Ok_payload
        (Printf.sprintf "store %s: %s entries=%d bytes=%d\n" (Store.Disk.root s)
           (Store.Disk.stats_to_string (Store.Disk.stats s))
           entries bytes))
  | "PERSIST", Some "off" ->
    let had = Engine.store engine <> None in
    Engine.set_store engine None;
    Ok_payload (if had then "store detached\n" else "no store attached\n")
  | "PERSIST", Some dir -> (
    match Store.Disk.open_store ~root:dir () with
    | Ok s ->
      Engine.set_store engine (Some s);
      Ok_payload (Printf.sprintf "store attached %s\n" (Store.Disk.root s))
    | Error msg -> Err msg)
  | "INVALIDATE", Some path ->
    with_file path (fun src ->
        Ok_payload (Printf.sprintf "invalidated %d\n" (Engine.invalidate engine src)))
  | "REANALYZE", Some path ->
    (* Re-read an updated source and classify it through the unit
       layer: unchanged loop nests reuse their cached artifacts. *)
    with_file path (fun src ->
        match Engine.reanalyze ?pool engine src with
        | Ok text -> Ok_payload text
        | Error msg -> Err msg)
  | (("CLASSIFY" | "DEPS" | "TRIP" | "CHECK" | "RANGES") as cmd), Some path ->
    let artifact =
      match cmd with
      | "CLASSIFY" -> Engine.Classify
      | "DEPS" -> Engine.Deps
      | "CHECK" -> Engine.Check
      | "RANGES" -> Engine.Ranges
      | _ -> Engine.Trip
    in
    artifact_reply ?pool engine artifact path
  | ( (("CLASSIFY" | "DEPS" | "TRIP" | "CHECK" | "RANGES" | "INVALIDATE"
      | "PASSES" | "BATCH" | "REANALYZE") as cmd),
      None ) ->
    Err (cmd ^ " needs a file argument")
  (* PERSIST with and without argument are both valid, handled above. *)
  | (("QUIT" | "STATS" | "METRICS" | "RESET" | "TRACE") as cmd), Some _ ->
    Err (cmd ^ " takes no argument")
  | cmd, _ -> Err ("unknown command " ^ cmd)

let reply_to_string = function
  | Ok_payload payload ->
    Printf.sprintf "OK %d\n%s" (String.length payload) payload
  | Err msg ->
    (* Keep the reply one line whatever the diagnostic contains. *)
    let msg = String.map (function '\n' | '\r' -> ' ' | c -> c) msg in
    Printf.sprintf "ERR %s\n" msg
  | Bye -> "BYE\n"

let run ?pool engine ic oc =
  let requests = Metrics.counter (Engine.metrics engine) "server.requests" in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> output_string oc (reply_to_string Bye)
    | line ->
      Metrics.incr requests;
      let verb, _ = split_command (String.trim line) in
      let reply =
        try
          (* TRACE drains the collector, so its own span would be left
             open inside the payload: serve it unspanned. *)
          if verb = "TRACE" || not (Obs.Trace.enabled ()) then
            handle ?pool engine line
          else
            Obs.Trace.with_span ~cat:"server"
              ~attrs:[ ("verb", Obs.Trace.Str verb) ]
              "server.request"
              (fun () -> handle ?pool engine line)
        with e -> Err (Printexc.to_string e)
      in
      output_string oc (reply_to_string reply);
      flush oc;
      (match reply with Bye -> () | _ -> loop ())
  in
  loop ();
  flush oc
