(* Content-addressed memoization of the analysis pipeline. *)

type options = { use_sccp : bool }

let default_options = { use_sccp = true }

type artifact = Classify | Deps | Trip

let artifact_to_string = function
  | Classify -> "classify"
  | Deps -> "deps"
  | Trip -> "trip"

let artifact_of_string = function
  | "classify" -> Some Classify
  | "deps" -> Some Deps
  | "trip" -> Some Trip
  | _ -> None

(* One cache holds both the driver and the rendered reports; the
   artifact tag in the key keeps them apart. *)
type value = V_driver of Analysis.Driver.t | V_text of string

type t = {
  options : options;
  cache : (Digest.t, (value, string) result) Cache.t;
  metrics : Metrics.t;
}

let create ?(capacity = 256) ?(options = default_options) () =
  { options; cache = Cache.create ~capacity (); metrics = Metrics.create () }

let options t = t.options
let metrics t = t.metrics
let cache_stats t = Cache.stats t.cache

let key t tag src =
  Digest.feed_bool (Digest.of_strings [ tag; src ]) t.options.use_sccp

(* -- the pipeline, with per-phase timings and timeout ticks -- *)

let compute_driver t src : (value, string) result =
  match Metrics.time t.metrics "phase.parse" (fun () -> Ir.Parser.parse_result src) with
  | Error msg -> Error msg
  | Ok prog ->
    Pool.tick ();
    let ssa = Metrics.time t.metrics "phase.ssa" (fun () -> Ir.Ssa.of_program prog) in
    (match Ir.Ssa.check ssa with
     | [] ->
       Pool.tick ();
       let d =
         Metrics.time t.metrics "phase.classify" (fun () ->
             Analysis.Driver.analyze ~use_sccp:t.options.use_sccp ssa)
       in
       Pool.tick ();
       Ok (V_driver d)
     | errs -> Error (String.concat "\n" errs))

(* Cache lookup with a hit/miss event per artifact; the computation runs
   under a span so cold paths are visible in the trace. *)
let cached t tag k compute =
  if not (Obs.Trace.enabled ()) then Cache.find_or_add t.cache k compute
  else begin
    let hit = ref true in
    let v =
      Cache.find_or_add t.cache k (fun () ->
          hit := false;
          Obs.Trace.with_span ~cat:"engine"
            ~attrs:[ ("artifact", Obs.Trace.Str tag) ]
            "engine.compute" compute)
    in
    Obs.Trace.event ~cat:"engine"
      ~attrs:
        [ ("artifact", Obs.Trace.Str tag);
          ("hit", Obs.Trace.Bool !hit) ]
      "engine.cache";
    v
  end

let analyze t src : (Analysis.Driver.t, string) result =
  Metrics.incr (Metrics.counter t.metrics "requests.analyze");
  match cached t "analyze" (key t "analyze" src) (fun () -> compute_driver t src) with
  | Ok (V_driver d) -> Ok d
  | Ok (V_text _) -> assert false
  | Error msg -> Error msg

(* -- report renderers (shared by ivtool and the server) -- *)

let render_classify d = Analysis.Driver.report d

let render_trip d =
  let ssa = Analysis.Driver.ssa d in
  let loops = Ir.Ssa.loops ssa in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      let trip = Analysis.Driver.trip_count d lp.Ir.Loops.id in
      Format.fprintf fmt "loop %-8s trips: %a" lp.Ir.Loops.name
        (Analysis.Trip_count.pp_with (fun id -> Ir.Ssa.primary_name ssa id))
        trip;
      (match Analysis.Trip_count.max_count_int trip with
       | Some n when Analysis.Trip_count.count_int trip = None ->
         Format.fprintf fmt " (at most %d)" n
       | _ -> ());
      Format.fprintf fmt "@.")
    (Ir.Loops.postorder loops);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let render t artifact src : (string, string) result =
  let tag = artifact_to_string artifact in
  Metrics.incr (Metrics.counter t.metrics ("requests." ^ tag));
  match
    cached t tag (key t tag src) (fun () ->
        match analyze t src with
        | Error msg -> Error msg
        | Ok d ->
          Pool.tick ();
          let text =
            match artifact with
            | Classify -> render_classify d
            | Deps ->
              Metrics.time t.metrics "phase.deps" (fun () ->
                  let g = Dependence.Dep_graph.build d in
                  if g = [] then "no dependences\n"
                  else Dependence.Dep_graph.to_string d g)
            | Trip -> render_trip d
          in
          Ok (V_text text))
  with
  | Ok (V_text s) -> Ok s
  | Ok (V_driver _) -> assert false
  | Error msg -> Error msg

let classify t src = render t Classify src
let deps t src = render t Deps src
let trip t src = render t Trip src

let invalidate t src =
  List.fold_left
    (fun acc tag -> if Cache.invalidate t.cache (key t tag src) then acc + 1 else acc)
    0
    [ "analyze"; "classify"; "deps"; "trip" ]

let clear t =
  Cache.clear t.cache;
  Cache.reset_stats t.cache;
  Metrics.reset t.metrics

let stats_report t =
  Printf.sprintf "cache: %s\n%s\n"
    (Cache.stats_to_string (cache_stats t))
    (Metrics.dump t.metrics)
