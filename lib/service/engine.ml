(* Content-addressed memoization of the staged analysis pipeline.

   The engine keys its cache per *pass*, not per monolithic analysis:
   each source text maps (through one digest, computed once per
   request) to an Analysis.Pipeline instance whose stages force lazily,
   so a trip-count request never runs promotion or dependence testing.
   The dependence report — the one artifact computed above lib/analysis
   — is cached under a key derived from the promote pass's result
   digest, so it survives pipeline eviction and is shared by any source
   that promotes to the same classification. *)

module Pipeline = Analysis.Pipeline

type options = { use_sccp : bool; check_iters : int; use_ranges : bool }

let default_options = { use_sccp = true; check_iters = 100; use_ranges = true }

type artifact = Classify | Deps | Trip | Check | Ranges

let artifact_to_string = function
  | Classify -> "classify"
  | Deps -> "deps"
  | Trip -> "trip"
  | Check -> "check"
  | Ranges -> "ranges"

let artifact_of_string = function
  | "classify" -> Some Classify
  | "deps" -> Some Deps
  | "trip" -> Some Trip
  | "check" -> Some Check
  | "ranges" | "range" -> Some Ranges
  | _ -> None

(* One cache holds pipeline instances, rendered dependence reports,
   verify-report parts and per-unit analysis artifacts; the key
   derivation keeps them apart. *)
type entry =
  | E_pipeline of Pipeline.t
  | E_text of string
  | E_part of Verify.Check.part
  | E_unit of Pipeline.unit_artifact

type pass_counters = { p_hits : int Atomic.t; p_misses : int Atomic.t }

(* Where a rendered artifact came from: the memory tier (a forced
   pipeline or a promoted text entry), the disk store, or a fresh
   computation. One triple per artifact kind — the per-kind hit-rate
   line in STATS. *)
type tier_counters = {
  a_mem : int Atomic.t;
  a_disk : int Atomic.t;
  a_computed : int Atomic.t;
}

let all_artifacts = [ Classify; Deps; Trip; Check; Ranges ]

type t = {
  options : options;
  cache : (Digest.t, entry) Cache.t;
  metrics : Metrics.t;
  counters : (Pipeline.pass * pass_counters) list;
  tiers : (artifact * tier_counters) list;
  mutable store : Store.Disk.t option;
  (* (base key, pass) pairs whose artifact was served from the disk
     store in this process — the `store` owner tier of `ivtool
     passes`. *)
  prov_lock : Mutex.t;
  store_served : (Digest.t * Pipeline.pass, unit) Hashtbl.t;
}

let create ?(capacity = 256) ?(options = default_options) ?store () =
  {
    options;
    cache = Cache.create ~capacity ();
    metrics = Metrics.create ();
    counters =
      List.map
        (fun p -> (p, { p_hits = Atomic.make 0; p_misses = Atomic.make 0 }))
        Pipeline.all;
    tiers =
      List.map
        (fun a ->
          ( a,
            {
              a_mem = Atomic.make 0;
              a_disk = Atomic.make 0;
              a_computed = Atomic.make 0;
            } ))
        all_artifacts;
    store;
    prov_lock = Mutex.create ();
    store_served = Hashtbl.create 16;
  }

let options t = t.options
let metrics t = t.metrics
let cache_stats t = Cache.stats t.cache
let store t = t.store
let set_store t s = t.store <- s

(* -- keys: the source text is digested exactly once per request; every
   key below derives from that digest -- *)

let base_key t src = Digest.feed_bool (Digest.of_strings [ src ]) t.options.use_sccp
let pipeline_key base = Digest.feed_string base "pipeline"
let deps_key promote_digest = Digest.feed_string promote_digest "text.deps"

(* Unit artifacts key off the unit digest alone (not the source): two
   sources sharing an unchanged loop nest share its artifact. *)
let unit_key udigest = Digest.feed_string udigest "unit.artifact"

(* -- the disk tier (lib/store) --

   The store persists *rendered* artifacts: byte-stable report text
   keyed by source digest ⊕ options ⊕ artifact kind. (Structured unit
   artifacts stay memory-only: they embed interned identifiers whose
   ids are process-local, so marshaling them across processes would be
   unsound. The rendered text is the deterministic function of the
   digest that survives.) [store_schema] versions the *content* of the
   reports — bump it whenever a renderer's output format changes, so a
   shared fleet store never serves bytes from an older report format. *)

let store_schema = 2

let render_key t base artifact =
  let k =
    Digest.feed_int
      (Digest.feed_string base ("render." ^ artifact_to_string artifact))
      store_schema
  in
  (* The rendered check report depends on the oracle's iteration bound;
     two processes with different --iters must not share it. The deps
     and check reports also depend on whether range sharpening is on. *)
  match artifact with
  | Check -> Digest.feed_bool (Digest.feed_int k t.options.check_iters) t.options.use_ranges
  | Deps -> Digest.feed_bool k t.options.use_ranges
  | Classify | Trip | Ranges -> k

let tier_of t artifact = List.assoc artifact t.tiers

let mark_store_served t base pass =
  Mutex.lock t.prov_lock;
  Hashtbl.replace t.store_served (base, pass) ();
  Mutex.unlock t.prov_lock

let was_store_served t base pass =
  Mutex.lock t.prov_lock;
  let r = Hashtbl.mem t.store_served (base, pass) in
  Mutex.unlock t.prov_lock;
  r

(* Probe the disk tier under an [engine.store] span. Absent store =
   silent None, so every caller works unchanged without one. *)
let store_probe t tag key =
  match t.store with
  | None -> None
  | Some s ->
    let probe () = Store.Disk.get s ~kind:tag key in
    if Obs.Trace.enabled () then
      Obs.Trace.with_span ~cat:"engine"
        ~attrs:[ ("artifact", Obs.Trace.Str tag) ]
        "engine.store" probe
    else probe ()

let store_publish t tag key text =
  match t.store with
  | None -> ()
  | Some s -> Store.Disk.put s ~kind:tag key text

let pipeline_for t base src : Pipeline.t =
  match
    Cache.find_or_add t.cache (pipeline_key base) (fun () ->
        E_pipeline
          (Pipeline.create ~options:{ Pipeline.use_sccp = t.options.use_sccp } src))
  with
  | E_pipeline p -> p
  | E_text _ | E_part _ | E_unit _ -> assert false

let pipeline t src = pipeline_for t (base_key t src) src

(* -- per-pass forcing with hit/miss accounting -- *)

let counters_of t pass = List.assq pass t.counters

let phase_metric = function
  | Pipeline.Parse -> "phase.parse"
  | Pipeline.Lower -> "phase.lower"
  | Pipeline.Ssa -> "phase.ssa"
  | Pipeline.Looptree -> "phase.looptree"
  | Pipeline.Sccp -> "phase.sccp"
  | Pipeline.Units -> "phase.units"
  | Pipeline.Unitclassify -> "phase.unit_classify"
  | Pipeline.Classify -> "phase.classify"
  | Pipeline.Trip -> "phase.trip"
  | Pipeline.Promote -> "phase.promote"
  | Pipeline.Ranges -> "phase.range"
  | Pipeline.Depgraph -> "phase.deps"
  | Pipeline.VerifyIr -> "phase.verify_ir"
  | Pipeline.VerifyClass -> "phase.verify_class"
  | Pipeline.VerifyRanges -> "phase.verify_ranges"
  | Pipeline.VerifyTrans -> "phase.verify_trans"

(* The unit-artifact cache interface handed to the pipeline's unit
   walk. [Cache.find] (not [peek]) so reused artifacts stay warm in the
   LRU. *)
let unit_lookup t d =
  match Cache.find t.cache (unit_key d) with
  | Some (E_unit a) -> Some a
  | Some (E_pipeline _ | E_text _ | E_part _) | None -> None

let unit_store t d a = Cache.add t.cache (unit_key d) (E_unit a)

(* A Classify miss runs through the unit layer: probe the shared unit
   cache, analyze only the units that missed, merge, and count one
   Unitclassify hit/miss per nest unit — the per-unit incremental
   signal STATS and traces expose. The missing units always go through
   [Pool.fork_all]: inside a pool task they become stealable scheduler
   nodes on the calling worker's deque, on a coordinator they borrow
   [pool], and otherwise they run inline — so unit fan-out happens for
   batch items and single-file serve requests alike. *)
let classify_units ?pool t p : (Pipeline.unit_outcome list, string) result =
  let pool_run thunks =
    Array.map
      (function
        | Pool.Done a -> a
        | Pool.Timed_out _ ->
          (* Surface the subtask's expired budget as the enclosing
             task's own timeout, not an opaque failure. *)
          raise Pool.Timeout
        | Pool.Failed e -> failwith e)
      (Pool.fork_all ?pool thunks)
  in
  match
    Pipeline.classify_with_units ~pool_run ~lookup:(unit_lookup t)
      ~store:(unit_store t) p
  with
  | Error e -> Error e
  | Ok outcomes ->
    let c = counters_of t Pipeline.Unitclassify in
    List.iter
      (fun (o : Pipeline.unit_outcome) ->
        if o.Pipeline.u_hit then Atomic.incr c.p_hits
        else Atomic.incr c.p_misses;
        if Obs.Trace.enabled () then
          Obs.Trace.event ~cat:"engine"
            ~attrs:
              [ ("unit", Obs.Trace.Int o.Pipeline.u_index);
                ("loops", Obs.Trace.Str (String.concat "," o.Pipeline.u_loops));
                ("hit", Obs.Trace.Bool o.Pipeline.u_hit) ]
            "engine.unit")
      outcomes;
    Ok outcomes

(* Classify, with its hit/miss accounting, returning the per-unit
   outcomes (empty when the pass was already forced). *)
let classify_outcomes ?pool t p : (Pipeline.unit_outcome list, string) result =
  let c = counters_of t Pipeline.Classify in
  if Pipeline.forced p Pipeline.Classify then begin
    Atomic.incr c.p_hits;
    Ok []
  end
  else begin
    Atomic.incr c.p_misses;
    Pool.tick ();
    Obs.Prof.time t.metrics
      (phase_metric Pipeline.Classify)
      (fun () -> classify_units ?pool t p)
  end

(* Force one pass: a hit when the pipeline already holds its result
   (even a cached error), a miss — timed under the legacy phase metric,
   with a cooperative-timeout tick — when it must run. Classify routes
   through the unit layer. *)
let ensure ?pool t p pass : (unit, string) result =
  match pass with
  | Pipeline.Classify -> Result.map ignore (classify_outcomes ?pool t p)
  | _ ->
    let c = counters_of t pass in
    if Pipeline.forced p pass then begin
      Atomic.incr c.p_hits;
      Ok ()
    end
    else begin
      Atomic.incr c.p_misses;
      Pool.tick ();
      Obs.Prof.time t.metrics (phase_metric pass) (fun () ->
          Pipeline.force p pass)
    end

let rec ensure_chain ?pool t p = function
  | [] -> Ok ()
  | pass :: rest -> (
    match ensure ?pool t p pass with
    | Ok () -> ensure_chain ?pool t p rest
    | Error e -> Error e)

(* Promote (and so Lower, which nothing here needs) is deliberately
   absent from the trip chain: a trip request must not force it. *)
let classify_chain =
  Pipeline.[ Parse; Ssa; Looptree; Sccp; Units; Classify; Promote ]

let trip_chain = Pipeline.[ Parse; Ssa; Looptree; Sccp; Units; Classify; Trip ]

let ranges_chain =
  Pipeline.[ Parse; Ssa; Looptree; Sccp; Units; Classify; Promote; Ranges ]

let analyze ?pool t src : (Analysis.Driver.t, string) result =
  Metrics.incr (Metrics.counter t.metrics "requests.analyze");
  let p = pipeline t src in
  match ensure_chain ?pool t p classify_chain with
  | Error e -> Error e
  | Ok () -> (
    match Pipeline.promoted p with
    | Ok a -> Ok (Analysis.Driver.of_analysis a)
    | Error e -> Error e)

(* -- the dependence report (the service layer's own pass) -- *)

let deps_text ?pool t p : (string, string) result =
  let chain = if t.options.use_ranges then ranges_chain else classify_chain in
  match ensure_chain ?pool t p chain with
  | Error e -> Error e
  | Ok () -> (
    match Pipeline.promoted p with
    | Error e -> Error e
    | Ok a ->
      let pd =
        match Pipeline.digest p Pipeline.Promote with
        | Some d -> d
        | None -> assert false (* promote just succeeded *)
      in
      (* Range sharpening changes the report, so the ranges digest joins
         the key: a source that promotes identically but ranges
         differently (it cannot today — ranges derive from promote — but
         schema honesty is cheap) never shares the text. *)
      let ranges =
        if t.options.use_ranges then
          match Pipeline.ranges p with Ok r -> Some r | Error _ -> None
        else None
      in
      let key =
        match (ranges, Pipeline.digest p Pipeline.Ranges) with
        | Some _, Some rd -> Digest.feed_string (deps_key pd) (Digest.to_hex rd)
        | _ -> deps_key pd
      in
      let c = counters_of t Pipeline.Depgraph in
      let computed = ref false in
      let entry =
        Cache.find_or_add t.cache key (fun () ->
            computed := true;
            Pool.tick ();
            Obs.Prof.time t.metrics "phase.deps" (fun () ->
                let d = Analysis.Driver.of_analysis a in
                let g = Dependence.Dep_graph.build ?ranges d in
                E_text
                  (if g = [] then "no dependences\n"
                   else Dependence.Dep_graph.to_string d g)))
      in
      if !computed then Atomic.incr c.p_misses else Atomic.incr c.p_hits;
      (match entry with
       | E_text text ->
         Pipeline.note p Pipeline.Depgraph (Digest.of_strings [ text ]);
         Ok text
       | E_pipeline _ | E_part _ | E_unit _ -> assert false))

(* -- checked mode: the three verify passes (lib/verify) --

   Each part is cached on its own key, derived from the digests of the
   passes it actually reads — the structural part from Lower + Ssa (this
   is the consumer the Lower pass never had), the oracle from Promote
   plus the iteration bound, the transform validators from the source
   digest (they re-lower their own fresh copies, and their footprints
   depend on the program text, not on what it classified to). Completed
   parts are recorded on the pipeline with [Pipeline.note], so `ivtool
   passes` and STATS show checked mode like any other pass. *)

let verify_key tag digests =
  List.fold_left
    (fun acc d -> Digest.feed_string acc (Digest.to_hex d))
    (Digest.of_strings [ tag ]) digests

let verify_ir_key p =
  match (Pipeline.digest p Pipeline.Lower, Pipeline.digest p Pipeline.Ssa) with
  | Some dl, Some ds -> Some (verify_key "part.verify_ir" [ dl; ds ])
  | _ -> None

let verify_class_key t p =
  match Pipeline.digest p Pipeline.Promote with
  | Some dp ->
    Some (Digest.feed_int (verify_key "part.verify_class" [ dp ]) t.options.check_iters)
  | None -> None

let verify_trans_key base = Digest.feed_string base "part.verify_trans"

let verify_ranges_key t p =
  match
    (Pipeline.digest p Pipeline.Promote, Pipeline.digest p Pipeline.Ranges)
  with
  | Some dp, Some dr ->
    Some
      (Digest.feed_int
         (verify_key "part.verify_ranges" [ dp; dr ])
         t.options.check_iters)
  | _ -> None

(* Force one verify pass through the part cache, with the same hit/miss
   accounting, timeout tick and phase timing as any other pass. *)
let ensure_part t p pass key compute : Verify.Check.part =
  let c = counters_of t pass in
  let computed = ref false in
  let entry =
    Cache.find_or_add t.cache key (fun () ->
        computed := true;
        Pool.tick ();
        Obs.Prof.time t.metrics (phase_metric pass) (fun () -> E_part (compute ())))
  in
  if !computed then Atomic.incr c.p_misses else Atomic.incr c.p_hits;
  match entry with
  | E_part part ->
    Pipeline.note p pass (Digest.of_strings [ Verify.Check.part_to_text part ]);
    part
  | E_pipeline _ | E_text _ | E_unit _ -> assert false

(* The check chain forces Lower (unlike every other artifact): the
   structural verifier is the lowered CFG's consumer. *)
let check_chain =
  Pipeline.[ Parse; Lower; Ssa; Looptree; Sccp; Units; Classify; Promote ]

let check_parts ?pool t base p : (Verify.Check.report, string) result =
  match ensure_chain ?pool t p check_chain with
  | Error e -> Error e
  | Ok () ->
    let get = function Ok v -> v | Error _ -> assert false (* chain forced *) in
    let prog = get (Pipeline.parse p) in
    let lower = get (Pipeline.lower p) in
    let ssa = get (Pipeline.ssa p) in
    let a = get (Pipeline.promoted p) in
    let structural =
      match verify_ir_key p with
      | Some key ->
        ensure_part t p Pipeline.VerifyIr key (fun () ->
            Verify.Check.structural_part ~lower ssa)
      | None -> Verify.Check.structural_part ~lower ssa
    in
    (* A structurally broken program cannot be meaningfully interpreted
       or transformed; report the structural findings alone. *)
    if List.exists Ir.Diag.is_error structural.Verify.Check.diags then
      Ok { Verify.Check.parts = [ structural ] }
    else begin
      let d = Analysis.Driver.of_analysis a in
      let oracle =
        match verify_class_key t p with
        | Some key ->
          ensure_part t p Pipeline.VerifyClass key (fun () ->
              Verify.Check.oracle_part ~iters:t.options.check_iters d)
        | None -> Verify.Check.oracle_part ~iters:t.options.check_iters d
      in
      let ranges_part =
        if not t.options.use_ranges then []
        else begin
          match ensure ?pool t p Pipeline.Ranges with
          | Error _ -> []
          | Ok () -> (
            match Pipeline.ranges p with
            | Error _ -> []
            | Ok r ->
              let part =
                match verify_ranges_key t p with
                | Some key ->
                  ensure_part t p Pipeline.VerifyRanges key (fun () ->
                      Verify.Check.ranges_part ~iters:t.options.check_iters d r)
                | None ->
                  Verify.Check.ranges_part ~iters:t.options.check_iters d r
              in
              [ part ])
        end
      in
      let trans =
        ensure_part t p Pipeline.VerifyTrans (verify_trans_key base) (fun () ->
            Verify.Check.transform_part prog)
      in
      Ok { Verify.Check.parts = [ structural; oracle ] @ ranges_part @ [ trans ] }
    end

(* [check t src] is the structured report (the CLI's `--check` and
   `ivtool check` read it); the rendered artifact below serves batch and
   the CHECK verb. *)
let check t src : (Verify.Check.report, string) result =
  Metrics.incr (Metrics.counter t.metrics "requests.check");
  let base = base_key t src in
  check_parts t base (pipeline_for t base src)

(* -- rendered artifacts -- *)

let final_pass = function
  | Classify -> Pipeline.Promote
  | Trip -> Pipeline.Trip
  | Deps -> Pipeline.Depgraph
  | Check -> Pipeline.VerifyTrans
  | Ranges -> Pipeline.Ranges

(* The three-step read path: memory (a forced pipeline, or the rendered
   text an earlier disk hit promoted into the LRU), then the disk store,
   then compute — publishing the fresh rendering back to the store so
   the next process starts warm. *)
let render ?pool t artifact src : (string, string) result =
  let tag = artifact_to_string artifact in
  Metrics.incr (Metrics.counter t.metrics ("requests." ^ tag));
  let base = base_key t src in
  let tier = tier_of t artifact in
  let rkey = render_key t base artifact in
  let cache_event hit tier_name =
    if Obs.Trace.enabled () then
      Obs.Trace.event ~cat:"engine"
        ~attrs:
          [ ("artifact", Obs.Trace.Str tag);
            ("hit", Obs.Trace.Bool hit);
            ("tier", Obs.Trace.Str tier_name) ]
        "engine.cache"
  in
  (* Promoted rendered text exists only when a store is attached; keep
     the store-less engine byte-for-byte on its historical path. *)
  let promoted =
    if t.store = None then None
    else
      match Cache.find t.cache rkey with
      | Some (E_text text) -> Some text
      | Some (E_pipeline _ | E_part _ | E_unit _) | None -> None
  in
  match promoted with
  | Some text ->
    Atomic.incr tier.a_mem;
    cache_event true "memory";
    Ok text
  | None -> (
    let p = pipeline_for t base src in
    let hit = Pipeline.forced p (final_pass artifact) in
    let compute () =
      match artifact with
      | Classify -> (
        match ensure_chain ?pool t p classify_chain with
        | Error e -> Error e
        | Ok () -> Pipeline.report p)
      | Trip -> (
        match ensure_chain ?pool t p trip_chain with
        | Error e -> Error e
        | Ok () -> Pipeline.trip_report p)
      | Deps -> deps_text ?pool t p
      | Check -> Result.map Verify.Check.to_text (check_parts ?pool t base p)
      | Ranges -> (
        match ensure_chain ?pool t p ranges_chain with
        | Error e -> Error e
        | Ok () -> Pipeline.range_report p)
    in
    if hit then begin
      (* The pipeline already holds every pass the artifact needs;
         "compute" only re-renders it. *)
      Atomic.incr tier.a_mem;
      cache_event true "memory";
      compute ()
    end
    else
      match store_probe t tag rkey with
      | Some text ->
        Atomic.incr tier.a_disk;
        (* Promote: the next request for this artifact is a memory hit
           even though no pipeline pass ever ran in this process. *)
        Cache.add t.cache rkey (E_text text);
        mark_store_served t base (final_pass artifact);
        cache_event true "disk";
        Ok text
      | None ->
        let result =
          if not (Obs.Trace.enabled ()) then compute ()
          else
            Obs.Trace.with_span ~cat:"engine"
              ~attrs:[ ("artifact", Obs.Trace.Str tag) ]
              "engine.compute" compute
        in
        Atomic.incr tier.a_computed;
        (match result with
         | Ok text -> store_publish t tag rkey text
         | Error _ -> ());
        cache_event false "computed";
        result)

let classify t src = render t Classify src
let deps t src = render t Deps src
let trip t src = render t Trip src
let ranges t src = render t Ranges src

(* -- incremental surfaces -- *)

(* Shared by diff and reanalyze: classify [src] through the unit layer
   and hand back the per-unit outcomes alongside the pipeline. *)
let classify_with_outcomes ?pool t src =
  let p = pipeline t src in
  match ensure_chain ?pool t p Pipeline.[ Parse; Ssa; Looptree; Sccp; Units ] with
  | Error e -> Error e
  | Ok () -> (
    match classify_outcomes ?pool t p with
    | Error e -> Error e
    | Ok outcomes -> (
      match ensure ?pool t p Pipeline.Promote with
      | Error e -> Error e
      | Ok () -> Ok (p, outcomes)))

(* [diff t old_src new_src] analyzes OLD (warming the unit cache), then
   NEW through it, and reports per unit whether its artifact was reused
   and why. *)
let diff ?pool t old_src new_src : (string, string) result =
  Metrics.incr (Metrics.counter t.metrics "requests.diff");
  (* Warm OLD through the unit layer directly (not [render]): a disk
     store could serve OLD's rendered report without ever populating
     the unit cache, and diff's whole point is unit-level reuse. *)
  match classify_with_outcomes ?pool t old_src with
  | Error e -> Error e
  | Ok _ -> (
    let old_hex =
      match Pipeline.units (pipeline t old_src) with
      | Ok (Some us) ->
        List.map (fun u -> Digest.to_hex u.Pipeline.udigest) us
      | Ok None | Error _ -> []
    in
    match classify_with_outcomes ?pool t new_src with
    | Error e -> Error e
    | Ok (p_new, outcomes) -> (
      match Pipeline.units p_new with
      | Error e -> Error e
      | Ok None -> Ok "diff: no unit mapping; whole-program re-analysis\n"
      | Ok (Some infos) ->
        let buf = Buffer.create 256 in
        let reused = ref 0 and reran = ref 0 in
        let lines =
          List.map
            (fun (i : Pipeline.unit_info) ->
              let idx = i.Pipeline.region.Ir.Region.index in
              let kind =
                Ir.Region.kind_to_string i.Pipeline.region.Ir.Region.kind
              in
              let loops =
                match
                  List.find_opt
                    (fun o -> o.Pipeline.u_index = idx)
                    outcomes
                with
                | Some o -> o.Pipeline.u_loops
                | None -> []
              in
              let unchanged =
                List.mem (Digest.to_hex i.Pipeline.udigest) old_hex
              in
              let status =
                if i.Pipeline.uroots = [] then
                  (* no loop work to reuse either way *)
                  if unchanged then "unchanged (no loop work)"
                  else "changed (no loop work)"
                else
                  match
                    List.find_opt
                      (fun o -> o.Pipeline.u_index = idx)
                      outcomes
                  with
                  | Some o when o.Pipeline.u_hit ->
                    incr reused;
                    "reused (unit cache hit)"
                  | Some _ ->
                    incr reran;
                    if unchanged then "reanalyzed (evicted)"
                    else "reanalyzed (changed)"
                  | None ->
                    (* NEW was already classified before this diff *)
                    if unchanged then begin
                      incr reused;
                      "reused (pipeline cached)"
                    end
                    else begin
                      incr reran;
                      "changed (pipeline cached)"
                    end
              in
              Printf.sprintf "unit %-3d %-8s %-12s %s\n" idx kind
                (match loops with [] -> "-" | l -> String.concat "," l)
                status)
            infos
        in
        Buffer.add_string buf
          (Printf.sprintf "diff: %d units, %d reused, %d reanalyzed\n"
             (List.length infos) !reused !reran);
        List.iter (Buffer.add_string buf) lines;
        Ok (Buffer.contents buf)))

(* [reanalyze t src] — the serve-mode REANALYZE verb: classify through
   the unit layer and prepend a reuse summary to the classification
   report. *)
let reanalyze ?pool t src : (string, string) result =
  Metrics.incr (Metrics.counter t.metrics "requests.reanalyze");
  match classify_with_outcomes ?pool t src with
  | Error e -> Error e
  | Ok (p, outcomes) -> (
    match Pipeline.report p with
    | Error e -> Error e
    | Ok report ->
      let summary =
        match outcomes with
        | [] -> "reanalyze: pipeline cached\n"
        | os ->
          let hits = List.length (List.filter (fun o -> o.Pipeline.u_hit) os) in
          Printf.sprintf "reanalyze: %d units, %d reused, %d computed\n"
            (List.length os) hits
            (List.length os - hits)
      in
      Ok (summary ^ report))

let invalidate t src =
  let base = base_key t src in
  let pk = pipeline_key base in
  (* Drop the dependence report first: its key derives from the promote
     digest, reachable only while the pipeline entry is alive. *)
  let removed_derived =
    match Cache.peek t.cache pk with
    | Some (E_pipeline p) ->
      let drop = function
        | Some key -> if Cache.invalidate t.cache key then 1 else 0
        | None -> 0
      in
      drop
        (match Pipeline.digest p Pipeline.Promote with
         | Some pd -> (
           let base_deps = deps_key pd in
           match Pipeline.digest p Pipeline.Ranges with
           | Some rd when t.options.use_ranges ->
             Some (Digest.feed_string base_deps (Digest.to_hex rd))
           | _ -> Some base_deps)
         | None -> None)
      + drop (verify_ir_key p)
      + drop (verify_class_key t p)
      + drop (verify_ranges_key t p)
      + drop
          (if Pipeline.forced p Pipeline.VerifyTrans then
             Some (verify_trans_key base)
           else None)
    | _ -> 0
  in
  removed_derived + (if Cache.invalidate t.cache pk then 1 else 0)

let clear t =
  Cache.clear t.cache;
  Cache.reset_stats t.cache;
  Metrics.reset t.metrics;
  List.iter
    (fun (_, c) ->
      Atomic.set c.p_hits 0;
      Atomic.set c.p_misses 0)
    t.counters;
  List.iter
    (fun (_, c) ->
      Atomic.set c.a_mem 0;
      Atomic.set c.a_disk 0;
      Atomic.set c.a_computed 0)
    t.tiers;
  Mutex.lock t.prov_lock;
  Hashtbl.reset t.store_served;
  Mutex.unlock t.prov_lock

(* -- introspection -- *)

let pass_stats t =
  List.map
    (fun (p, c) -> (Pipeline.name p, Atomic.get c.p_hits, Atomic.get c.p_misses))
    t.counters

let artifact_stats t =
  List.map
    (fun (a, c) ->
      (a, Atomic.get c.a_mem, Atomic.get c.a_disk, Atomic.get c.a_computed))
    t.tiers

let rate hits total =
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let stats_report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "cache: %s\n" (Cache.stats_to_string (cache_stats t)));
  (match t.store with
   | None -> ()
   | Some s ->
     Buffer.add_string buf
       (Printf.sprintf "store: %s\n"
          (Store.Disk.stats_to_string (Store.Disk.stats s))));
  (* Per artifact kind: which tier served it, and the overall hit rate
     (memory + disk over everything) — the one line that proves a
     restart started warm. *)
  List.iter
    (fun (a, mem, disk, computed) ->
      let total = mem + disk + computed in
      if total > 0 then
        Buffer.add_string buf
          (Printf.sprintf "artifact.%s: mem=%d disk=%d computed=%d hit_rate=%.2f\n"
             (artifact_to_string a) mem disk computed
             (rate (mem + disk) total)))
    (artifact_stats t);
  List.iter
    (fun (name, h, m) ->
      if h + m > 0 then
        Buffer.add_string buf
          (Printf.sprintf "pass.%s: hits=%d misses=%d hit_rate=%.2f\n" name h m
             (rate h (h + m))))
    (pass_stats t);
  Buffer.add_string buf (Metrics.dump t.metrics);
  Buffer.add_string buf "\n";
  Buffer.contents buf

(* The Prometheus exposition of everything this engine knows: the
   engine's own tier/pass accounting (atomics + cache/store structs,
   which live outside the Instrument registry) rendered as Export_prom
   rows, a current-process GC snapshot, and then the whole metrics
   registry (phase timings + GC deltas, pool per-domain telemetry,
   request counters). Backing for serve [METRICS] and `ivtool
   metrics`. *)
let prometheus_report t =
  let open Obs.Export_prom in
  let c = float_of_int in
  let cs = cache_stats t in
  let cache_rows =
    [
      row "cache.hits" (Counter (c cs.Cache.hits)) ~help:"memory LRU lookups served";
      row "cache.misses" (Counter (c cs.Cache.misses));
      row "cache.evictions" (Counter (c cs.Cache.evictions));
      row "cache.insertions" (Counter (c cs.Cache.insertions));
      row "cache.invalidations" (Counter (c cs.Cache.invalidations));
      row "cache.size" (Gauge (c cs.Cache.size)) ~help:"entries resident in the memory LRU";
      row "cache.capacity" (Gauge (c cs.Cache.capacity));
    ]
  in
  let store_rows =
    match t.store with
    | None -> []
    | Some s ->
      let ss = Store.Disk.stats s in
      let entries, bytes = Store.Disk.usage s in
      [
        row "store.hits" (Counter (c ss.Store.Disk.hits)) ~help:"disk store reads that validated";
        row "store.misses" (Counter (c ss.Store.Disk.misses));
        row "store.puts" (Counter (c ss.Store.Disk.puts));
        row "store.put_errors" (Counter (c ss.Store.Disk.put_errors));
        row "store.rejects_corrupt" (Counter (c ss.Store.Disk.rejects_corrupt));
        row "store.rejects_version" (Counter (c ss.Store.Disk.rejects_version));
        row "store.rejects_foreign" (Counter (c ss.Store.Disk.rejects_foreign));
        row "store.entries" (Gauge (c entries)) ~help:"entries on disk";
        row "store.bytes" (Gauge (c bytes)) ~help:"payload bytes on disk";
      ]
  in
  let pass_rows =
    List.concat_map
      (fun (name, hits, misses) ->
        let labels = [ ("pass", name) ] in
        [
          row (Metrics.labeled "pass.hits" labels) (Counter (c hits));
          row (Metrics.labeled "pass.misses" labels) (Counter (c misses));
        ])
      (pass_stats t)
  in
  let tier_rows =
    List.concat_map
      (fun (a, mem, disk, computed) ->
        let kind = artifact_to_string a in
        List.map
          (fun (tier, v) ->
            row
              (Metrics.labeled "artifact.served" [ ("artifact", kind); ("tier", tier) ])
              (Counter (c v)))
          [ ("mem", mem); ("disk", disk); ("computed", computed) ])
      (artifact_stats t)
  in
  let gc = Obs.Prof.sample () in
  let gc_rows =
    [
      row "gc.process.minor_words" (Counter gc.Obs.Prof.minor_words)
        ~help:"words allocated on this domain's minor heap since start";
      row "gc.process.promoted_words" (Counter gc.Obs.Prof.promoted_words);
      row "gc.process.major_words" (Counter gc.Obs.Prof.major_words);
      row "gc.process.minor_collections" (Counter (c gc.Obs.Prof.minor_collections));
      row "gc.process.major_collections" (Counter (c gc.Obs.Prof.major_collections));
      row "gc.process.heap_words" (Gauge (c gc.Obs.Prof.heap_words));
    ]
  in
  render_rows
    (cache_rows @ store_rows @ pass_rows @ tier_rows @ gc_rows
    @ of_instruments t.metrics)

let passes_report t src =
  let base = base_key t src in
  let p = pipeline_for t base src in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "source %s  (sccp=%b)\n"
       (Digest.to_hex (Pipeline.source_digest p))
       t.options.use_sccp);
  List.iter
    (fun pass ->
      let forced = Pipeline.forced p pass in
      let status = if forced then "forced" else "lazy" in
      (* Provenance: [store] when the pass's artifact was satisfied from
         the disk store and the pass itself never ran here; otherwise
         who would compute it. *)
      let owner =
        if (not forced) && was_store_served t base pass then "store"
        else if Pipeline.engine_forced pass then "engine"
        else "pipeline"
      in
      let digest =
        match Pipeline.digest p pass with
        | Some d -> Digest.to_hex d
        | None -> "-"
      in
      let inputs =
        match Pipeline.inputs pass with
        | [] -> "(source)"
        | l -> String.concat ", " (List.map Pipeline.name l)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-14s %-6s %-8s %-16s <- %s\n" (Pipeline.name pass)
           status owner digest inputs))
    Pipeline.all;
  Buffer.contents buf
