(* Re-export: the FNV-1a implementation lives in lib/hash so that
   lib/analysis can digest pass results without depending on the
   service layer. *)

include Hash.Fnv
