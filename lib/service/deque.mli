(** A Chase-Lev work-stealing deque.

    One {e owner} domain pushes and pops at the bottom; any number of
    {e thief} domains steal from the top. Every element pushed is
    claimed by exactly one of {!pop} or {!steal} (the property the
    scheduler's determinism argument rests on — see docs/SERVICE.md).

    The owner-side operations ({!push}, {!pop}) must only be called
    from the owning domain; {!steal} and {!length} are safe anywhere. *)

type 'a t

(** [create ?capacity ()] — an empty deque. The cell array grows
    (owner-side, thieves unaffected) when a push outruns [capacity]. *)
val create : ?capacity:int -> unit -> 'a t

(** Number of unclaimed elements; a racy snapshot, useful only as a
    victim-selection or queue-depth hint. *)
val length : 'a t -> int

(** Owner-only: add an element at the bottom. *)
val push : 'a t -> 'a -> unit

(** Owner-only: remove the most recently pushed unclaimed element.
    [None] when empty (or when a thief won the race for the last
    element). *)
val pop : 'a t -> 'a option

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing unclaimed at the time of the read *)
  | Retry  (** lost a race (another thief, the owner, or a grow) *)

(** Thief: claim the oldest unclaimed element. *)
val steal : 'a t -> 'a steal_result
