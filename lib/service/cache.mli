(** A bounded, thread-safe, in-memory LRU cache.

    Entries are kept in recency order; inserting into a full cache
    evicts the least-recently-used entry. Every operation is guarded by
    a mutex, so one cache instance may be shared by all the domains of a
    {!Pool}. Hit, miss, eviction and insertion counts are maintained for
    {!Metrics} reporting. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  invalidations : int;
  size : int;
  capacity : int;
}

(** [create ~capacity ()] makes an empty cache holding at most
    [capacity] entries (default 256). [capacity] is clamped to ≥ 1. *)
val create : ?capacity:int -> unit -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int

(** [find c k] is the cached value, bumping [k] to most-recent. Counts
    one hit or one miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [peek c k] is a stat-neutral {!find}: no hit/miss accounting and no
    recency bump. For introspection that must not perturb statistics. *)
val peek : ('k, 'v) t -> 'k -> 'v option

(** [add c k v] inserts or replaces [k], making it most-recent, evicting
    the LRU entry if the cache was full. Does not touch hit/miss. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add c k f] returns the cached value for [k], or computes
    [f ()], inserts it and returns it. The lock is released while [f]
    runs, so two domains racing on the same absent key may both compute;
    the first insertion wins and the loser's value is returned from its
    own computation (still counted as one miss each). *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** [invalidate c k] removes [k] if present; returns whether it was. *)
val invalidate : ('k, 'v) t -> 'k -> bool

(** Remove every entry (counted as invalidations, not evictions). *)
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats
val reset_stats : ('k, 'v) t -> unit

(** Render [stats] as a one-line summary, e.g.
    ["hits=3 misses=2 hit_rate=0.60 evictions=0 size=2/256"]. *)
val stats_to_string : stats -> string
