(* A Chase-Lev work-stealing deque [CL05]: the owner pushes and pops at
   the bottom (LIFO, cache-warm), thieves steal one element at a time
   from the top (FIFO, the oldest work). [top] only ever grows, so
   there is no ABA on the claim CAS; the element array is published
   through an [Atomic.t] so a thief that races a grow either sees the
   old array (whose in-range cells are never overwritten — the owner
   writes only the replacement) or the fully-copied new one.

   Cells are themselves atomics. That is one indirection more than the
   classic C layout, but it makes every cross-domain access a proper
   synchronized read under the OCaml 5 memory model, and the scheduler's
   units of work are whole file/unit analyses — microseconds to
   milliseconds — so cell overhead is noise here. *)

type 'a t = {
  top : int Atomic.t; (* next index to steal; only grows *)
  bottom : int Atomic.t; (* next index to push; owner-written *)
  cells : 'a option Atomic.t array Atomic.t;
}

let create ?(capacity = 16) () =
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let cap = pow2 16 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    cells = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let length t =
  max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner-only: double the array, copying the live range [tp, b). The
   old array keeps its values — a thief holding it still reads valid
   cells for any index it can win the top CAS on. *)
let grow t b tp =
  let old = Atomic.get t.cells in
  let n = Array.length old in
  let fresh =
    Array.init (2 * n)
      (fun _ -> Atomic.make None)
  in
  for i = tp to b - 1 do
    Atomic.set fresh.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set t.cells fresh;
  fresh

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let cells = Atomic.get t.cells in
  let cells =
    if b - tp >= Array.length cells then grow t b tp else cells
  in
  Atomic.set cells.(b land (Array.length cells - 1)) (Some v);
  Atomic.set t.bottom (b + 1)

(* Owner-only. The only race is over the last element, settled by a CAS
   on [top] against any thief. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty: restore the canonical empty state. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let cells = Atomic.get t.cells in
    let v = Atomic.get cells.(b land (Array.length cells - 1)) in
    if b > tp then v
    else begin
      (* Last element: win it from the thieves or concede it. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then v else None
    end
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

(* Any domain. A failed CAS means another thief (or the owner popping
   the last element) claimed index [tp] first — retry against the new
   top if desired. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b - tp <= 0 then Empty
  else begin
    let cells = Atomic.get t.cells in
    match Atomic.get cells.(tp land (Array.length cells - 1)) with
    | None -> Retry (* raced a grow publish; the next read settles *)
    | Some v ->
      if Atomic.compare_and_set t.top tp (tp + 1) then Stolen v else Retry
  end
