(** The persistent request/response loop behind `ivtool serve`.

    Line-delimited requests, byte-counted replies (see docs/SERVICE.md):

    {v
    request  := COMMAND [SP ARG] NL
    COMMAND  := CLASSIFY path | DEPS path | TRIP path | CHECK path
                | RANGES path
              | REANALYZE path
              | BATCH artifact path...      (artifact := classify|deps|trip|check)
              | PASSES path | INVALIDATE path | STATS | METRICS | TRACE | RESET | QUIT
              | PERSIST [dir | off]
    reply    := "OK " nbytes NL payload     (exactly nbytes bytes)
              | "ERR " message NL
              | "BYE" NL                    (QUIT / end of input)
    v}

    [BATCH] fans the listed files out over the server's resident worker
    pool (when one was given to {!run}) and replies with per-file
    sections under [== path ==] headers, in argument order. [PASSES]
    prints the pass DAG for a file with forced/lazy status per pass.
    [REANALYZE] re-reads a (possibly updated) file and classifies it
    through the unit layer, prepending a unit-reuse summary — with a
    warm cache only the edited loop nests are recomputed (see
    docs/INCREMENTAL.md).

    [PERSIST dir] attaches the persistent disk store at [dir] (creating
    it if needed) as the engine's second cache tier; [PERSIST off]
    detaches it; bare [PERSIST] reports the attached store's root, live
    hit/miss/put counters and on-disk usage (see docs/STORE.md).

    Paths are read from the server's filesystem on every request; the
    cache key is the file's {e content}, so touching a file without
    changing it still hits, and two identical files share one entry. *)

type reply =
  | Ok_payload of string  (** sent as [OK <nbytes>\n<payload>] *)
  | Err of string  (** sent as [ERR <message>\n] *)
  | Bye  (** sent as [BYE\n]; the loop stops *)

(** [handle engine line] interprets one request line. Pure with respect
    to the channels — exposed for tests. [pool] serves [BATCH] requests
    from resident workers; without it they run on the calling domain. *)
val handle : ?pool:Pool.pool -> Engine.t -> string -> reply

(** Serialize a reply exactly as [run] writes it. *)
val reply_to_string : reply -> string

(** [run engine ic oc] serves requests from [ic] until [QUIT] or end of
    input, flushing [oc] after every reply. I/O or per-request analysis
    errors are reported as [ERR] replies; the loop only stops on
    [QUIT]/EOF. [pool] is handed to every request (see {!handle}). *)
val run : ?pool:Pool.pool -> Engine.t -> in_channel -> out_channel -> unit
