(* The metrics registry moved to [Obs.Instrument] (PR 2) so the tracing
   exporters can fold instrument state into their summaries; this module
   re-exports it unchanged for existing call sites. *)

include Obs.Instrument
