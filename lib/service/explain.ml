(* Classification provenance reports: re-run classification under a
   fresh collector and replay the per-SCR provenance events (category
   "provenance", one per strongly-connected region, emitted by
   Analysis.Classify in Tarjan emission order) as a readable report,
   followed by a ranges section — the per-def interval table plus the
   bounds-check classification it licenses. *)

let attr (e : Obs.Trace.event) key =
  Option.map Obs.Trace.attr_to_string (List.assoc_opt key e.Obs.Trace.ev_attrs)

let str e key = Option.value ~default:"?" (attr e key)

let members e = String.split_on_char ',' (str e "members")

let mentions v e = List.mem v (members e)

let provenance_events events =
  List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.ev_cat = "provenance") events

(* [report ?var events] renders the provenance events, grouped by loop
   in event order; with [var], only SCRs containing that SSA name. *)
let report ?var events =
  let selected =
    match var with
    | None -> provenance_events events
    | Some v -> List.filter (mentions v) (provenance_events events)
  in
  let buf = Buffer.create 512 in
  let current_loop = ref "" in
  List.iter
    (fun e ->
      let loop = str e "loop" in
      if loop <> !current_loop then begin
        current_loop := loop;
        Buffer.add_string buf (Printf.sprintf "== loop %s ==\n" loop)
      end;
      Buffer.add_string buf
        (Printf.sprintf "scr {%s}  shape: %s\n"
           (String.concat ", " (members e))
           (str e "shape"));
      Buffer.add_string buf (Printf.sprintf "  rule: %s\n" (str e "rule"));
      List.iter
        (fun name ->
          match attr e ("class." ^ name) with
          | Some c -> Buffer.add_string buf (Printf.sprintf "  %-8s %s\n" name c)
          | None -> ())
        (members e))
    selected;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The provenance events as a JSON array of SCR objects. *)
let scrs_to_json ?var events =
  let selected =
    match var with
    | None -> provenance_events events
    | Some v -> List.filter (mentions v) (provenance_events events)
  in
  let scr e =
    let classes =
      List.filter_map
        (fun name ->
          Option.map
            (fun c ->
              Printf.sprintf {|"%s":"%s"|} (json_escape name) (json_escape c))
            (attr e ("class." ^ name)))
        (members e)
    in
    Printf.sprintf
      {|{"loop":"%s","members":[%s],"shape":"%s","rule":"%s","classes":{%s}}|}
      (json_escape (str e "loop"))
      (String.concat ","
         (List.map (fun m -> "\"" ^ json_escape m ^ "\"") (members e)))
      (json_escape (str e "shape"))
      (json_escape (str e "rule"))
      (String.concat "," classes)
  in
  "[" ^ String.concat "," (List.map scr selected) ^ "]"

(* The ranges section: interval table plus, when the program declares
   array extents, the bounds-check classification. *)
let ranges_parts engine src =
  match Engine.analyze engine src with
  | Error _ -> None
  | Ok t ->
    let r = Analysis.Driver.ranges t in
    let bounds =
      match Ir.Parser.parse_result src with
      | Error _ -> None
      | Ok prog ->
        if prog.Ir.Ast.decls = [] then None
        else
          Some (Transform.Bounds_elim.analyze r (Analysis.Driver.ssa t) prog)
    in
    Some (r, bounds)

(* [run ?var ?json engine src] — classify [src] (through the engine, so
   cache options apply) and return the provenance report with the
   ranges section appended. [Error] when the program fails to
   parse/analyze, or when [var] matches no SCR. *)
let run ?var ?(json = false) engine src =
  (* A cache hit would skip classification (and so emit no provenance
     events): drop the pipeline entry and classify through the
     whole-program walk rather than [Engine.classify], whose unit-level
     cache would splice in stored artifacts without re-classifying. *)
  ignore (Engine.invalidate engine src);
  let p = Engine.pipeline engine src in
  let result, t =
    Obs.Trace.collect (fun () -> Analysis.Pipeline.report p)
  in
  match result with
  | Error msg -> Error msg
  | Ok _ -> (
    let events = Obs.Trace.events t in
    match var with
    | Some v when not (List.exists (mentions v) (provenance_events events)) ->
      Error (Printf.sprintf "no classification event mentions %S" v)
    | _ ->
      let ranges = ranges_parts engine src in
      if json then begin
        let buf = Buffer.create 512 in
        Buffer.add_string buf "{\"scrs\":";
        Buffer.add_string buf (scrs_to_json ?var events);
        (match ranges with
         | Some (r, bounds) ->
           Buffer.add_string buf ",\"ranges\":";
           Buffer.add_string buf (Analysis.Range.to_json r);
           (match bounds with
            | Some (s : Transform.Bounds_elim.summary) ->
              Buffer.add_string buf
                (Printf.sprintf
                   {|,"bounds":{"eliminated":%d,"retained":%d,"skipped":%d}|}
                   s.Transform.Bounds_elim.eliminated
                   s.Transform.Bounds_elim.retained
                   s.Transform.Bounds_elim.skipped)
            | None -> ())
         | None -> ());
        Buffer.add_string buf "}\n";
        Ok (Buffer.contents buf)
      end
      else begin
        let buf = Buffer.create 512 in
        Buffer.add_string buf (report ?var events);
        (match ranges with
         | Some (r, bounds) ->
           Buffer.add_string buf "== ranges ==\n";
           Buffer.add_string buf (Analysis.Range.report r);
           (match bounds with
            | Some s ->
              Buffer.add_string buf (Transform.Bounds_elim.report s)
            | None -> ())
         | None -> ());
        Ok (Buffer.contents buf)
      end)
