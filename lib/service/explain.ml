(* Classification provenance reports: re-run classification under a
   fresh collector and replay the per-SCR provenance events (category
   "provenance", one per strongly-connected region, emitted by
   Analysis.Classify in Tarjan emission order) as a readable report. *)

let attr (e : Obs.Trace.event) key =
  Option.map Obs.Trace.attr_to_string (List.assoc_opt key e.Obs.Trace.ev_attrs)

let str e key = Option.value ~default:"?" (attr e key)

let members e = String.split_on_char ',' (str e "members")

let mentions v e = List.mem v (members e)

let provenance_events events =
  List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.ev_cat = "provenance") events

(* [report ?var events] renders the provenance events, grouped by loop
   in event order; with [var], only SCRs containing that SSA name. *)
let report ?var events =
  let selected =
    match var with
    | None -> provenance_events events
    | Some v -> List.filter (mentions v) (provenance_events events)
  in
  let buf = Buffer.create 512 in
  let current_loop = ref "" in
  List.iter
    (fun e ->
      let loop = str e "loop" in
      if loop <> !current_loop then begin
        current_loop := loop;
        Buffer.add_string buf (Printf.sprintf "== loop %s ==\n" loop)
      end;
      Buffer.add_string buf
        (Printf.sprintf "scr {%s}  shape: %s\n"
           (String.concat ", " (members e))
           (str e "shape"));
      Buffer.add_string buf (Printf.sprintf "  rule: %s\n" (str e "rule"));
      List.iter
        (fun name ->
          match attr e ("class." ^ name) with
          | Some c -> Buffer.add_string buf (Printf.sprintf "  %-8s %s\n" name c)
          | None -> ())
        (members e))
    selected;
  Buffer.contents buf

(* [run ?var engine src] — classify [src] (through the engine, so cache
   options apply) and return the provenance report. [Error] when the
   program fails to parse/analyze, or when [var] matches no SCR. *)
let run ?var engine src =
  (* A cache hit would skip classification (and so emit no provenance
     events): drop the pipeline entry and classify through the
     whole-program walk rather than [Engine.classify], whose unit-level
     cache would splice in stored artifacts without re-classifying. *)
  ignore (Engine.invalidate engine src);
  let p = Engine.pipeline engine src in
  let result, t =
    Obs.Trace.collect (fun () -> Analysis.Pipeline.report p)
  in
  match result with
  | Error msg -> Error msg
  | Ok _ -> (
    let events = Obs.Trace.events t in
    match var with
    | Some v when not (List.exists (mentions v) (provenance_events events)) ->
      Error (Printf.sprintf "no classification event mentions %S" v)
    | _ -> Ok (report ?var events))
