(** `ivtool explain`: classification provenance reports.

    Classification emits one structured event per strongly-connected
    region (category ["provenance"]) recording the SCR's members, the
    shape that matched, the rule that fired and every member's final
    class. This module re-runs classification under a private collector
    and renders those events. *)

(** The provenance events among [events], in order. *)
val provenance_events : Obs.Trace.event list -> Obs.Trace.event list

(** Does this event's SCR contain the SSA name? *)
val mentions : string -> Obs.Trace.event -> bool

(** [report ?var events] — the textual report; with [var], only SCRs
    containing that SSA name. *)
val report : ?var:string -> Obs.Trace.event list -> string

(** [run ?var ?json engine src] — classify [src] and report: the
    per-SCR provenance followed by a [== ranges ==] section (per-def
    intervals and, when the program declares array extents, the
    bounds-check classification). With [json], one object
    [{"scrs":[...],"ranges":{...},"bounds":{...}}] instead. [Error] on
    parse/analysis failure or when [var] matches no SCR. *)
val run :
  ?var:string -> ?json:bool -> Engine.t -> string -> (string, string) result
