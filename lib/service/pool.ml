(* Work-stealing-free work queue: an atomic next-index into the task
   array. Results land in a per-index slot, so output order is input
   order whatever the interleaving. *)

exception Timeout

type 'b outcome = Done of 'b | Failed of string | Timed_out of float

(* The current task's absolute deadline (epoch seconds), per domain. *)
let deadline : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let tick () =
  match Domain.DLS.get deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

let run_task ?timeout_s f task =
  let t0 = Unix.gettimeofday () in
  Domain.DLS.set deadline (Option.map (fun s -> t0 +. s) timeout_s);
  let outcome =
    try Done (f task) with
    | Timeout -> Timed_out (Unix.gettimeofday () -. t0)
    | e -> Failed (Printexc.to_string e)
  in
  Domain.DLS.set deadline None;
  outcome

let map ?timeout_s ?queue_depth ~domains f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  let next = Atomic.make 0 in
  let traced = Obs.Trace.enabled () in
  let worker wid () =
    let work () =
      (* Time between claiming a slot and the previous task finishing is
         the queue wait; with an atomic next-index it is contention only. *)
      let rec loop () =
        let claim_ns = if traced then Obs.Clock.now_ns () else 0L in
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match queue_depth with
           | Some g -> g (max 0 (n - i - 1))
           | None -> ());
          (if traced then
             Obs.Trace.with_span ~cat:"pool"
               ~attrs:
                 [ ("task", Obs.Trace.Int i);
                   ("worker", Obs.Trace.Int wid);
                   ( "queue_wait_us",
                     Obs.Trace.Float
                       (Obs.Clock.ns_to_us
                          (Int64.sub (Obs.Clock.now_ns ()) claim_ns)) ) ]
               "pool.task"
               (fun () -> results.(i) <- run_task ?timeout_s f tasks.(i))
           else results.(i) <- run_task ?timeout_s f tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    if traced then
      Obs.Trace.with_span ~cat:"pool"
        ~attrs:[ ("worker", Obs.Trace.Int wid) ]
        "pool.worker" work
    else work ()
  in
  let d = max 1 (min domains n) in
  let body () =
    if d <= 1 then worker 0 ()
    else begin
      let spawned =
        Obs.Trace.with_span ~cat:"pool"
          ~attrs:[ ("domains", Obs.Trace.Int (d - 1)) ]
          "pool.spawn"
          (fun () -> List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))))
      in
      worker 0 ();
      Obs.Trace.with_span ~cat:"pool" "pool.join" (fun () ->
          List.iter Domain.join spawned)
    end
  in
  if traced then
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:[ ("tasks", Obs.Trace.Int n); ("domains", Obs.Trace.Int d) ]
      "pool.map" body
  else body ();
  results

let map_list ?timeout_s ?queue_depth ~domains f tasks =
  Array.to_list (map ?timeout_s ?queue_depth ~domains f (Array.of_list tasks))

let to_result = function
  | Done x -> Ok x
  | Failed msg -> Error ("task failed: " ^ msg)
  | Timed_out s -> Error (Printf.sprintf "task timed out after %.3fs" s)

let default_domains ?(cap = 8) () =
  max 1 (min cap (Domain.recommended_domain_count ()))
