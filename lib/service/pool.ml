(* Work-stealing-free work queue: an atomic next-index into the task
   array. Results land in a per-index slot, so output order is input
   order whatever the interleaving. *)

exception Timeout

type 'b outcome = Done of 'b | Failed of string | Timed_out of float

(* The current task's absolute deadline (epoch seconds), per domain. *)
let deadline : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let tick () =
  match Domain.DLS.get deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

let run_task ?timeout_s f task =
  let t0 = Unix.gettimeofday () in
  Domain.DLS.set deadline (Option.map (fun s -> t0 +. s) timeout_s);
  let outcome =
    try Done (f task) with
    | Timeout -> Timed_out (Unix.gettimeofday () -. t0)
    | e -> Failed (Printexc.to_string e)
  in
  Domain.DLS.set deadline None;
  outcome

let map ?timeout_s ?queue_depth ~domains f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match queue_depth with
         | Some g -> g (max 0 (n - i - 1))
         | None -> ());
        results.(i) <- run_task ?timeout_s f tasks.(i);
        loop ()
      end
    in
    loop ()
  in
  let d = max 1 (min domains n) in
  if d <= 1 then worker ()
  else begin
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  results

let map_list ?timeout_s ?queue_depth ~domains f tasks =
  Array.to_list (map ?timeout_s ?queue_depth ~domains f (Array.of_list tasks))

let to_result = function
  | Done x -> Ok x
  | Failed msg -> Error ("task failed: " ^ msg)
  | Timed_out s -> Error (Printf.sprintf "task timed out after %.3fs" s)

let default_domains ?(cap = 8) () =
  max 1 (min cap (Domain.recommended_domain_count ()))
