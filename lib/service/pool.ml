(* The work-stealing scheduler. One Chase-Lev deque per worker
   ([Deque]): the job submitter seeds its own deque with the top-level
   tasks (reverse order, so index 0 pops first), every worker pops its
   own bottom and steals from victims' tops when empty, and a task may
   fork subtasks ([fork_all]) that land on its worker's own deque as
   first-class scheduler nodes — that is how a single large file stops
   serializing a domain: its per-unit analyses are stolen by whoever is
   idle.

   Determinism: results land in a per-index slot, so output order is
   input order whatever the interleaving; the deque claims each node
   exactly once (pop/steal race settled by a CAS on [top]).

   Idle workers park on a condition variable, not a spin loop — on an
   oversubscribed or single-core host a spinning thief would starve the
   very worker it wants to steal from. The protocol is an epoch
   counter: read the epoch, re-scan every deque, and only wait if the
   epoch is unchanged (every push batch and every completion that a
   waiter could be waiting on bumps the epoch and broadcasts, so the
   re-scan either sees the work or sees a moved epoch). *)

exception Timeout

type 'b outcome = Done of 'b | Failed of string | Timed_out of float

(* The current task's absolute deadline (epoch seconds), per domain. *)
let deadline : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let tick () =
  match Domain.DLS.get deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

let capture t0 thunk =
  try Done (thunk ()) with
  | Timeout -> Timed_out (Unix.gettimeofday () -. t0)
  | e -> Failed (Printexc.to_string e)

(* Deadlines nest: a task body may execute further tasks (a worker
   helping with forked subtasks), so the previous deadline is restored,
   not cleared. [timeout_s = None] inherits the ambient deadline — a
   forked subtask keeps ticking against its parent's budget. *)
let run_task ?timeout_s f task =
  let t0 = Unix.gettimeofday () in
  let saved = Domain.DLS.get deadline in
  (match timeout_s with
   | Some s -> Domain.DLS.set deadline (Some (t0 +. s))
   | None -> ());
  let outcome = capture t0 (fun () -> f task) in
  Domain.DLS.set deadline saved;
  outcome

(* Observe a spawn/join (or any pool-internal) duration into a metrics
   histogram, when a registry is attached. *)
let observing metrics name f =
  match metrics with
  | None -> f ()
  | Some m -> Obs.Instrument.time m name f

(* -- scheduler core -- *)

(* A fork/join scope: [left] counts unfinished subtasks of one
   [fork_all]. The node that brings it to zero bumps the epoch so the
   (possibly parked) forker notices. *)
type scope = { left : int Atomic.t }

type node = { scope : scope option; run : unit -> unit }

type sched = {
  nworkers : int;
  deques : node Deque.t array;
  remaining : int Atomic.t; (* unfinished top-level tasks *)
  idle_lock : Mutex.t;
  idle_cond : Condition.t;
  mutable epoch : int; (* guarded by idle_lock *)
}

(* Per-worker, per-job telemetry instruments, registered once per job
   under the worker's domain-id label, then lock-cheap per node. *)
type instr = {
  c_tasks : Obs.Instrument.counter;
  h_latency : Obs.Instrument.histogram;
  h_wait : Obs.Instrument.histogram;
  c_steals : Obs.Instrument.counter;
  c_parks : Obs.Instrument.counter;
}

type wctx = {
  sched : sched;
  wid : int;
  traced : bool;
  metrics : Obs.Instrument.t option;
  labels : (string * string) list;
  instr : instr option;
  queue_depth : (int -> unit) option;
  measured : bool;
}

(* The worker executing the current domain's current job, if any:
   [fork_all] from inside a task finds its own deque through this. *)
let wctx_key : wctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let make_sched nworkers n =
  {
    nworkers;
    deques = Array.init nworkers (fun _ -> Deque.create ());
    remaining = Atomic.make n;
    idle_lock = Mutex.create ();
    idle_cond = Condition.create ();
    epoch = 0;
  }

(* Bump the epoch and wake every parked worker. Called after each push
   batch and by whichever node completes a scope or the whole job. *)
let publish s =
  Mutex.lock s.idle_lock;
  s.epoch <- s.epoch + 1;
  Condition.broadcast s.idle_cond;
  Mutex.unlock s.idle_lock

let read_epoch s =
  Mutex.lock s.idle_lock;
  let e = s.epoch in
  Mutex.unlock s.idle_lock;
  e

(* Park until the epoch moves past [e] — unless [alive] already turned
   false. Spurious wakeups are fine; every caller loops. *)
let park ctx e alive =
  let s = ctx.sched in
  Mutex.lock s.idle_lock;
  if s.epoch = e && alive () then begin
    (match ctx.instr with
     | Some i -> Obs.Instrument.incr i.c_parks
     | None -> ());
    Condition.wait s.idle_cond s.idle_lock
  end;
  Mutex.unlock s.idle_lock

let register_instr m labels =
  {
    c_tasks = Obs.Instrument.counter m (Obs.Instrument.labeled "pool.tasks" labels);
    h_latency =
      Obs.Instrument.histogram m
        (Obs.Instrument.labeled "pool.task_latency" labels);
    h_wait =
      Obs.Instrument.histogram m (Obs.Instrument.labeled "pool.queue_wait" labels);
    c_steals =
      Obs.Instrument.counter m (Obs.Instrument.labeled "pool.steals" labels);
    c_parks =
      Obs.Instrument.counter m (Obs.Instrument.labeled "pool.parks" labels);
  }

(* Execute one node with the PR 7 telemetry envelope: per-domain task
   counter, latency/queue-wait histograms, per-task GC deltas as
   [pool.gc.*{domain=N}] counters ([Gc.quick_stat] minor-heap counters
   are domain-local on OCaml 5, so the attribution is exact), and the
   same GC delta as span attributes when traced. *)
let exec_node ~traced ~metrics ~instr ~labels ~wid node ~wait_ns =
  let exec () =
    match (metrics, instr) with
    | Some m, Some i ->
      let before = Obs.Prof.sample () in
      let t0 = Obs.Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let d = Obs.Prof.delta before (Obs.Prof.sample ()) in
          Obs.Instrument.incr i.c_tasks;
          Obs.Instrument.observe i.h_latency
            (Obs.Clock.ns_to_us (Int64.sub (Obs.Clock.now_ns ()) t0) *. 1e-6);
          Obs.Instrument.observe i.h_wait (Obs.Clock.ns_to_us wait_ns *. 1e-6);
          Obs.Prof.record ~labels m ~prefix:"pool.gc" d;
          if traced then Obs.Trace.add_attrs (Obs.Prof.attrs d))
        node.run
    | _ -> node.run ()
  in
  if traced then
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:
        [ ("worker", Obs.Trace.Int wid);
          ("queue_wait_us", Obs.Trace.Float (Obs.Clock.ns_to_us wait_ns)) ]
      "pool.task" exec
  else exec ()

let exec_ctx ctx node ~wait_ns =
  exec_node ~traced:ctx.traced ~metrics:ctx.metrics ~instr:ctx.instr
    ~labels:ctx.labels ~wid:ctx.wid node ~wait_ns

(* Scan victims round-robin from our own id. A [Retry] means someone
   claimed the top while we looked — re-read the same victim, it
   settles (top only grows, so a retry implies global progress). *)
let try_steal ctx =
  let s = ctx.sched in
  let rec attempt v =
    match Deque.steal s.deques.(v) with
    | Deque.Stolen node ->
      (match ctx.instr with
       | Some i -> Obs.Instrument.incr i.c_steals
       | None -> ());
      Some node
    | Deque.Retry -> attempt v
    | Deque.Empty -> None
  in
  let rec scan k =
    if k >= s.nworkers then None
    else
      match attempt ((ctx.wid + k) mod s.nworkers) with
      | Some _ as r -> r
      | None -> scan (k + 1)
  in
  scan 1

let find_work ctx =
  match Deque.pop ctx.sched.deques.(ctx.wid) with
  | Some _ as r -> r
  | None -> try_steal ctx

let feed_depth ctx =
  match ctx.queue_depth with
  | None -> ()
  | Some g ->
    g (Array.fold_left (fun acc d -> acc + Deque.length d) 0 ctx.sched.deques)

(* A worker's top-level loop: pop own bottom, steal, or park; done when
   no top-level task is unfinished. *)
let rec work_loop ctx =
  let s = ctx.sched in
  if Atomic.get s.remaining > 0 then begin
    let claim_ns = if ctx.measured then Obs.Clock.now_ns () else 0L in
    let take () =
      match find_work ctx with
      | None -> None
      | Some node ->
        feed_depth ctx;
        let wait_ns =
          if ctx.measured then Int64.sub (Obs.Clock.now_ns ()) claim_ns else 0L
        in
        exec_ctx ctx node ~wait_ns;
        Some ()
    in
    (match take () with
     | Some () -> ()
     | None ->
       (* Nothing visible: grab the epoch, close the race with one more
          scan, then park until the epoch moves. *)
       let e = read_epoch s in
       (match take () with
        | Some () -> ()
        | None -> park ctx e (fun () -> Atomic.get s.remaining > 0)));
    work_loop ctx
  end

(* -- fork/join inside a task --

   The forker pushes its subtasks onto its OWN deque (it is the owner),
   publishes, then helps: it pops nodes, but executes only nodes of its
   own scope. Since nothing else is pushed to this deque between the
   fork and the joins, the scope's nodes are the newest contiguous
   block — the first pop that returns a foreign node proves every scope
   node is already claimed (popped here or stolen), so the forker puts
   it back and parks until [left] drains. Refusing foreign nodes is
   what makes forking safe from inside a critical section: a foreign
   top-level task may take the very lock the forker is holding (two
   batch items over the same source share a pipeline mutex), and
   executing it inline would self-deadlock. Thieves in [work_loop] hold
   no locks, so they may run anything. *)
let fork_in ctx thunks =
  let s = ctx.sched in
  let n = Array.length thunks in
  let results = Array.make n (Failed "task never ran") in
  let sc = { left = Atomic.make n } in
  let inherited = Domain.DLS.get deadline in
  let dq = s.deques.(ctx.wid) in
  for i = n - 1 downto 0 do
    let run () =
      let saved = Domain.DLS.get deadline in
      Domain.DLS.set deadline inherited;
      let t0 = Unix.gettimeofday () in
      results.(i) <- capture t0 thunks.(i);
      Domain.DLS.set deadline saved;
      if Atomic.fetch_and_add sc.left (-1) = 1 then publish s
    in
    Deque.push dq { scope = Some sc; run }
  done;
  publish s;
  let rec help () =
    if Atomic.get sc.left > 0 then
      match Deque.pop dq with
      | Some ({ scope = Some sc'; _ } as node) when sc' == sc ->
        exec_ctx ctx node ~wait_ns:0L;
        help ()
      | Some node ->
        (* Foreign: hand it back for a thief (or our own outer loop). *)
        Deque.push dq node;
        join_wait ()
      | None -> join_wait ()
  and join_wait () =
    if Atomic.get sc.left > 0 then begin
      let e = read_epoch s in
      if Atomic.get sc.left > 0 then park ctx e (fun () -> Atomic.get sc.left > 0);
      join_wait ()
    end
  in
  help ();
  results

(* -- job bodies -- *)

(* Worker [wid]'s participation in one job. Worker 0 (the submitter)
   seeds its deque with every top-level task in reverse index order:
   its own pops then proceed from index 0 while thieves start from the
   far end — the two walks meet in the middle with minimal traffic. *)
let job_worker ?timeout_s ?queue_depth ?metrics ~traced ~sched f tasks results
    wid =
  let domain_id = (Domain.self () :> int) in
  let labels = [ ("domain", string_of_int domain_id) ] in
  let instr = Option.map (fun m -> register_instr m labels) metrics in
  let ctx =
    {
      sched;
      wid;
      traced;
      metrics;
      labels;
      instr;
      queue_depth;
      measured = traced || Option.is_some metrics;
    }
  in
  if wid = 0 then begin
    let dq = sched.deques.(0) in
    for i = Array.length tasks - 1 downto 0 do
      let run () =
        results.(i) <- run_task ?timeout_s f tasks.(i);
        if Atomic.fetch_and_add sched.remaining (-1) = 1 then publish sched
      in
      Deque.push dq { scope = None; run }
    done;
    publish sched
  end;
  let saved = Domain.DLS.get wctx_key in
  Domain.DLS.set wctx_key (Some ctx);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set wctx_key saved)
    (fun () ->
      if traced then
        Obs.Trace.with_span ~cat:"pool"
          ~attrs:[ ("worker", Obs.Trace.Int wid) ]
          "pool.worker"
          (fun () -> work_loop ctx)
      else work_loop ctx)

(* The -j1 path: a plain loop on the calling domain — no deques, no
   scheduler atomics, no worker context (so [fork_all] runs inline). *)
let seq_run ?timeout_s ?queue_depth ?metrics ~traced f tasks results =
  let n = Array.length tasks in
  let domain_id = (Domain.self () :> int) in
  let labels = [ ("domain", string_of_int domain_id) ] in
  let instr = Option.map (fun m -> register_instr m labels) metrics in
  for i = 0 to n - 1 do
    (match queue_depth with Some g -> g (max 0 (n - i - 1)) | None -> ());
    exec_node ~traced ~metrics ~instr ~labels ~wid:0
      {
        scope = None;
        run = (fun () -> results.(i) <- run_task ?timeout_s f tasks.(i));
      }
      ~wait_ns:0L
  done

let map ?timeout_s ?queue_depth ?metrics ~domains f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  if n = 0 then results
  else begin
    let traced = Obs.Trace.enabled () in
    let d = max 1 (min domains n) in
    let body () =
      if d <= 1 then
        seq_run ?timeout_s ?queue_depth ?metrics ~traced f tasks results
      else begin
        let sched = make_sched d n in
        let worker wid () =
          job_worker ?timeout_s ?queue_depth ?metrics ~traced ~sched f tasks
            results wid
        in
        let spawned =
          Obs.Trace.with_span ~cat:"pool"
            ~attrs:[ ("domains", Obs.Trace.Int (d - 1)) ]
            "pool.spawn"
            (fun () ->
              observing metrics "pool.spawn" (fun () ->
                  List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1)))))
        in
        worker 0 ();
        Obs.Trace.with_span ~cat:"pool" "pool.join" (fun () ->
            observing metrics "pool.join" (fun () ->
                List.iter Domain.join spawned))
      end
    in
    if traced then
      Obs.Trace.with_span ~cat:"pool"
        ~attrs:[ ("tasks", Obs.Trace.Int n); ("domains", Obs.Trace.Int d) ]
        "pool.map" body
    else body ();
    results
  end

let map_list ?timeout_s ?queue_depth ?metrics ~domains f tasks =
  Array.to_list
    (map ?timeout_s ?queue_depth ?metrics ~domains f (Array.of_list tasks))

let to_result = function
  | Done x -> Ok x
  | Failed msg -> Error ("task failed: " ^ msg)
  | Timed_out s -> Error (Printf.sprintf "task timed out after %.3fs" s)

let default_domains ?(cap = 8) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

(* -- the persistent pool --

   [map] pays one Domain.spawn per worker per call; on small corpora
   the spawns dominate the analysis (see EXPERIMENTS.md, B1). A [pool]
   spawns its workers once and keeps them parked in [Condition.wait]
   between jobs, so repeated batch passes and serve-mode requests reuse
   the same domains. A job is a generation-stamped closure; the
   submitter participates as worker 0 and waits until every parked
   worker has finished the generation before returning, so results are
   complete (and in input order) on return, exactly like [map]. *)

type pool = {
  size : int; (* total workers, including the submitter *)
  lock : Mutex.t;
  cond : Condition.t;
  job_lock : Mutex.t; (* serializes submitters; held across a whole job *)
  mutable generation : int;
  mutable job : (int * (int -> unit)) option; (* generation, body *)
  mutable finished : int; (* parked workers done with the current job *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  metrics : Obs.Instrument.t option; (* default registry for [run] *)
}

let worker_loop pool wid =
  let seen = ref 0 in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stopped then Mutex.unlock pool.lock
    else
      match pool.job with
      | Some (g, body) when g <> !seen ->
        seen := g;
        Mutex.unlock pool.lock;
        (try body wid with _ -> ());
        Mutex.lock pool.lock;
        pool.finished <- pool.finished + 1;
        Condition.broadcast pool.cond;
        loop ()
      | _ ->
        Condition.wait pool.cond pool.lock;
        loop ()
  in
  loop ()

let create ?domains ?metrics () =
  let size =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let pool =
    {
      size;
      lock = Mutex.create ();
      cond = Condition.create ();
      job_lock = Mutex.create ();
      generation = 0;
      job = None;
      finished = 0;
      stopped = false;
      workers = [];
      metrics;
    }
  in
  if size > 1 then
    pool.workers <-
      Obs.Trace.with_span ~cat:"pool"
        ~attrs:[ ("domains", Obs.Trace.Int (size - 1)) ]
        "pool.spawn"
        (fun () ->
          observing metrics "pool.spawn" (fun () ->
              List.init (size - 1) (fun k ->
                  Domain.spawn (fun () -> worker_loop pool (k + 1)))));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.job_lock;
  Mutex.lock pool.lock;
  let already = pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock;
  if (not already) && pool.workers <> [] then
    Obs.Trace.with_span ~cat:"pool" "pool.join" (fun () ->
        observing pool.metrics "pool.join" (fun () ->
            List.iter Domain.join pool.workers));
  pool.workers <- [];
  Mutex.unlock pool.job_lock

let run ?timeout_s ?queue_depth ?metrics pool f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  if n = 0 then results
  else begin
    Mutex.lock pool.job_lock;
    if pool.stopped then begin
      Mutex.unlock pool.job_lock;
      invalid_arg "Pool.run: pool is shut down"
    end;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.job_lock)
      (fun () ->
        let traced = Obs.Trace.enabled () in
        let metrics =
          match metrics with Some _ -> metrics | None -> pool.metrics
        in
        let run_all () =
          if pool.size <= 1 then
            seq_run ?timeout_s ?queue_depth ?metrics ~traced f tasks results
          else begin
            let sched = make_sched pool.size n in
            let body wid =
              job_worker ?timeout_s ?queue_depth ?metrics ~traced ~sched f
                tasks results wid
            in
            Mutex.lock pool.lock;
            pool.generation <- pool.generation + 1;
            pool.finished <- 0;
            pool.job <- Some (pool.generation, body);
            Condition.broadcast pool.cond;
            Mutex.unlock pool.lock;
            (* The submitter seeds the deques and works the same job;
               parked workers steal their way in. *)
            Fun.protect
              ~finally:(fun () ->
                Mutex.lock pool.lock;
                while pool.finished < pool.size - 1 do
                  Condition.wait pool.cond pool.lock
                done;
                pool.job <- None;
                Mutex.unlock pool.lock)
              (fun () -> body 0)
          end
        in
        if traced then
          Obs.Trace.with_span ~cat:"pool"
            ~attrs:
              [ ("tasks", Obs.Trace.Int n);
                ("domains", Obs.Trace.Int pool.size);
                ("persistent", Obs.Trace.Bool true) ]
            "pool.map" run_all
        else run_all ());
    results
  end

let run_list ?timeout_s ?queue_depth ?metrics pool f tasks =
  Array.to_list
    (run ?timeout_s ?queue_depth ?metrics pool f (Array.of_list tasks))

(* -- fork_all: the unit-graph entry point --

   Inside a pool task, fork onto the worker's own deque (the per-unit
   nodes become stealable scheduler nodes). Outside one, borrow [pool]
   as a one-job coordinator when it has real workers; otherwise run
   inline. Inline evaluation deliberately leaves the ambient deadline
   untouched, so nested [tick]s still observe the caller's budget. *)
let inline_all thunks =
  Array.map
    (fun t ->
      let t0 = Unix.gettimeofday () in
      capture t0 t)
    thunks

let fork_all ?pool thunks =
  if Array.length thunks <= 1 then inline_all thunks
  else
    match Domain.DLS.get wctx_key with
    | Some ctx when ctx.sched.nworkers > 1 -> fork_in ctx thunks
    | _ -> (
      match pool with
      | Some p when p.size > 1 -> run p (fun t -> t ()) thunks
      | _ -> inline_all thunks)

let in_worker () = Option.is_some (Domain.DLS.get wctx_key)
