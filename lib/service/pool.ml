(* Work-stealing-free work queue: an atomic next-index into the task
   array. Results land in a per-index slot, so output order is input
   order whatever the interleaving. *)

exception Timeout

type 'b outcome = Done of 'b | Failed of string | Timed_out of float

(* The current task's absolute deadline (epoch seconds), per domain. *)
let deadline : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let tick () =
  match Domain.DLS.get deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

let run_task ?timeout_s f task =
  let t0 = Unix.gettimeofday () in
  Domain.DLS.set deadline (Option.map (fun s -> t0 +. s) timeout_s);
  let outcome =
    try Done (f task) with
    | Timeout -> Timed_out (Unix.gettimeofday () -. t0)
    | e -> Failed (Printexc.to_string e)
  in
  Domain.DLS.set deadline None;
  outcome

(* Observe a spawn/join (or any pool-internal) duration into a metrics
   histogram, when a registry is attached. *)
let observing metrics name f =
  match metrics with
  | None -> f ()
  | Some m -> Obs.Instrument.time m name f

(* One worker's share of a task array: claim slots off the shared
   atomic index until the queue drains. Shared by the one-shot [map]
   and the persistent pool below.

   With [?metrics], each worker records per-domain scheduler telemetry
   under its own domain-id label (registered once per job, then
   lock-cheap per task): a [pool.tasks{domain=N}] counter,
   [pool.task_latency{domain=N}] / [pool.queue_wait{domain=N}]
   histograms, and per-task GC deltas as [pool.gc.*{domain=N}]
   counters ([Gc.quick_stat] minor-heap counters are domain-local on
   OCaml 5, so the attribution is exact). When also traced, the same
   GC delta lands as attributes on the task's [pool.task] span. *)
let worker_body ?timeout_s ?queue_depth ?metrics ~traced ~results ~next f tasks
    wid =
  let n = Array.length tasks in
  let domain_id = (Domain.self () :> int) in
  let labels = [ ("domain", string_of_int domain_id) ] in
  let instruments =
    Option.map
      (fun m ->
        ( Obs.Instrument.counter m (Obs.Instrument.labeled "pool.tasks" labels),
          Obs.Instrument.histogram m
            (Obs.Instrument.labeled "pool.task_latency" labels),
          Obs.Instrument.histogram m
            (Obs.Instrument.labeled "pool.queue_wait" labels) ))
      metrics
  in
  let measured = traced || Option.is_some metrics in
  let work () =
    (* Time between claiming a slot and the previous task finishing is
       the queue wait; with an atomic next-index it is contention only. *)
    let rec loop () =
      let claim_ns = if measured then Obs.Clock.now_ns () else 0L in
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match queue_depth with
         | Some g -> g (max 0 (n - i - 1))
         | None -> ());
        let wait_ns =
          if measured then Int64.sub (Obs.Clock.now_ns ()) claim_ns else 0L
        in
        let exec () =
          match (metrics, instruments) with
          | Some m, Some (c_tasks, h_latency, h_wait) ->
            let before = Obs.Prof.sample () in
            let t0 = Obs.Clock.now_ns () in
            Fun.protect
              ~finally:(fun () ->
                let d = Obs.Prof.delta before (Obs.Prof.sample ()) in
                Obs.Instrument.incr c_tasks;
                Obs.Instrument.observe h_latency
                  (Obs.Clock.ns_to_us (Int64.sub (Obs.Clock.now_ns ()) t0)
                  *. 1e-6);
                Obs.Instrument.observe h_wait
                  (Obs.Clock.ns_to_us wait_ns *. 1e-6);
                Obs.Prof.record ~labels m ~prefix:"pool.gc" d;
                if traced then Obs.Trace.add_attrs (Obs.Prof.attrs d))
              (fun () -> results.(i) <- run_task ?timeout_s f tasks.(i))
          | _ -> results.(i) <- run_task ?timeout_s f tasks.(i)
        in
        (if traced then
           Obs.Trace.with_span ~cat:"pool"
             ~attrs:
               [ ("task", Obs.Trace.Int i);
                 ("worker", Obs.Trace.Int wid);
                 ("queue_wait_us", Obs.Trace.Float (Obs.Clock.ns_to_us wait_ns))
               ]
             "pool.task" exec
         else exec ());
        loop ()
      end
    in
    loop ()
  in
  if traced then
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:[ ("worker", Obs.Trace.Int wid) ]
      "pool.worker" work
  else work ()

let map ?timeout_s ?queue_depth ?metrics ~domains f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  let next = Atomic.make 0 in
  let traced = Obs.Trace.enabled () in
  let worker wid () =
    worker_body ?timeout_s ?queue_depth ?metrics ~traced ~results ~next f tasks
      wid
  in
  let d = max 1 (min domains n) in
  let body () =
    if d <= 1 then worker 0 ()
    else begin
      let spawned =
        Obs.Trace.with_span ~cat:"pool"
          ~attrs:[ ("domains", Obs.Trace.Int (d - 1)) ]
          "pool.spawn"
          (fun () ->
            observing metrics "pool.spawn" (fun () ->
                List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1)))))
      in
      worker 0 ();
      Obs.Trace.with_span ~cat:"pool" "pool.join" (fun () ->
          observing metrics "pool.join" (fun () ->
              List.iter Domain.join spawned))
    end
  in
  if traced then
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:[ ("tasks", Obs.Trace.Int n); ("domains", Obs.Trace.Int d) ]
      "pool.map" body
  else body ();
  results

let map_list ?timeout_s ?queue_depth ?metrics ~domains f tasks =
  Array.to_list
    (map ?timeout_s ?queue_depth ?metrics ~domains f (Array.of_list tasks))

let to_result = function
  | Done x -> Ok x
  | Failed msg -> Error ("task failed: " ^ msg)
  | Timed_out s -> Error (Printf.sprintf "task timed out after %.3fs" s)

let default_domains ?(cap = 8) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

(* -- the persistent pool --

   [map] pays one Domain.spawn per worker per call; on small corpora
   the spawns dominate the analysis (see EXPERIMENTS.md, B1). A [pool]
   spawns its workers once and keeps them parked in [Condition.wait]
   between jobs, so repeated batch passes and serve-mode requests reuse
   the same domains. A job is a generation-stamped closure; the
   submitter participates as worker 0 and waits until every parked
   worker has finished the generation before returning, so results are
   complete (and in input order) on return, exactly like [map]. *)

type pool = {
  size : int; (* total workers, including the submitter *)
  lock : Mutex.t;
  cond : Condition.t;
  job_lock : Mutex.t; (* serializes submitters; held across a whole job *)
  mutable generation : int;
  mutable job : (int * (int -> unit)) option; (* generation, body *)
  mutable finished : int; (* parked workers done with the current job *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  metrics : Obs.Instrument.t option; (* default registry for [run] *)
}

let worker_loop pool wid =
  let seen = ref 0 in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stopped then Mutex.unlock pool.lock
    else
      match pool.job with
      | Some (g, body) when g <> !seen ->
        seen := g;
        Mutex.unlock pool.lock;
        (try body wid with _ -> ());
        Mutex.lock pool.lock;
        pool.finished <- pool.finished + 1;
        Condition.broadcast pool.cond;
        loop ()
      | _ ->
        Condition.wait pool.cond pool.lock;
        loop ()
  in
  loop ()

let create ?domains ?metrics () =
  let size =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let pool =
    {
      size;
      lock = Mutex.create ();
      cond = Condition.create ();
      job_lock = Mutex.create ();
      generation = 0;
      job = None;
      finished = 0;
      stopped = false;
      workers = [];
      metrics;
    }
  in
  if size > 1 then
    pool.workers <-
      Obs.Trace.with_span ~cat:"pool"
        ~attrs:[ ("domains", Obs.Trace.Int (size - 1)) ]
        "pool.spawn"
        (fun () ->
          observing metrics "pool.spawn" (fun () ->
              List.init (size - 1) (fun k ->
                  Domain.spawn (fun () -> worker_loop pool (k + 1)))));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.job_lock;
  Mutex.lock pool.lock;
  let already = pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock;
  if (not already) && pool.workers <> [] then
    Obs.Trace.with_span ~cat:"pool" "pool.join" (fun () ->
        observing pool.metrics "pool.join" (fun () ->
            List.iter Domain.join pool.workers));
  pool.workers <- [];
  Mutex.unlock pool.job_lock

let run ?timeout_s ?queue_depth ?metrics pool f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "task never ran") in
  if n = 0 then results
  else begin
    Mutex.lock pool.job_lock;
    if pool.stopped then begin
      Mutex.unlock pool.job_lock;
      invalid_arg "Pool.run: pool is shut down"
    end;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.job_lock)
      (fun () ->
        let next = Atomic.make 0 in
        let traced = Obs.Trace.enabled () in
        let metrics =
          match metrics with Some _ -> metrics | None -> pool.metrics
        in
        let body wid =
          worker_body ?timeout_s ?queue_depth ?metrics ~traced ~results ~next f
            tasks wid
        in
        let run_all () =
          if pool.size <= 1 then body 0
          else begin
            Mutex.lock pool.lock;
            pool.generation <- pool.generation + 1;
            pool.finished <- 0;
            pool.job <- Some (pool.generation, body);
            Condition.broadcast pool.cond;
            Mutex.unlock pool.lock;
            (* The submitter works the same queue; parked workers with
               nothing left to claim return immediately. *)
            Fun.protect
              ~finally:(fun () ->
                Mutex.lock pool.lock;
                while pool.finished < pool.size - 1 do
                  Condition.wait pool.cond pool.lock
                done;
                pool.job <- None;
                Mutex.unlock pool.lock)
              (fun () -> body 0)
          end
        in
        if traced then
          Obs.Trace.with_span ~cat:"pool"
            ~attrs:
              [ ("tasks", Obs.Trace.Int n);
                ("domains", Obs.Trace.Int pool.size);
                ("persistent", Obs.Trace.Bool true) ]
            "pool.map" run_all
        else run_all ());
    results
  end

let run_list ?timeout_s ?queue_depth ?metrics pool f tasks =
  Array.to_list
    (run ?timeout_s ?queue_depth ?metrics pool f (Array.of_list tasks))
