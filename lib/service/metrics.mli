(** Counters, gauges and latency histograms — a re-export of
    {!Obs.Instrument}, where the implementation moved so that the
    tracing exporters ([Obs.Export_text]) can render instrument state
    alongside span summaries. See {!Obs.Instrument} for the API. *)

include module type of struct
  include Obs.Instrument
end
