(* The perf-trajectory gate: compare two BENCH_*.json files row by row
   and fail (nonzero exit in `ivtool bench-diff`) when a gated
   measurement regressed beyond the threshold.

   The differ is generic over this repo's bench JSON shape — a
   top-level object whose array members ("runs", "phases") hold rows of
   scalar fields. A row's identity is its string/bool fields plus the
   numeric fields that name a configuration axis ("domains"); every
   other numeric field is a measurement.

   Measurements are typed: wall-clock seconds and *_us are
   lower-is-better, throughput (files_per_sec) and speedup_* are
   higher-is-better, and only {seconds, files_per_sec, speedup_*} are
   *gated* — µs phase breakdowns and hit/miss counters print as
   informational deltas but never fail the gate (counters are
   structural: a change there means behavior changed, not that it got
   slower, and the µs rows double-count what "seconds" already
   gates). *)

type direction = Lower_better | Higher_better
type kind = Gated of direction | Info of direction | Count

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let kind_of_field f =
  if f = "seconds" then Gated Lower_better
  else if f = "files_per_sec" then Gated Higher_better
  else if starts_with ~prefix:"speedup" f then Gated Higher_better
  else if f = "pairs_proven_independent" then Gated Higher_better
  else if f = "checks_eliminated" then Gated Higher_better
  else if ends_with ~suffix:"_us" f then Info Lower_better
  else Count

(* Numeric fields that are configuration, not measurement. *)
let identity_num_field f = f = "domains" || f = "nests" || f = "reps"

type delta = {
  section : string;
  row_key : string;
  field : string;
  kind : kind;
  old_v : float;
  new_v : float;
  pct : float option;  (* signed percent change, None when old = 0 *)
  regression : bool;
}

type report = {
  threshold_pct : float;
  deltas : delta list;
  notes : string list;  (* rows present on one side only, shape changes *)
  regressions : int;
}

let render_scalar = function
  | Obs.Json.Str s -> Some s
  | Obs.Json.Bool b -> Some (string_of_bool b)
  | Obs.Json.Num n when Float.is_integer n -> Some (Printf.sprintf "%.0f" n)
  | Obs.Json.Num n -> Some (Printf.sprintf "%g" n)
  | _ -> None

let row_identity fields =
  fields
  |> List.filter_map (fun (k, v) ->
         match v with
         | Obs.Json.Str _ | Obs.Json.Bool _ -> (
           match render_scalar v with Some s -> Some (k, s) | None -> None)
         | Obs.Json.Num _ when identity_num_field k -> (
           match render_scalar v with Some s -> Some (k, s) | None -> None)
         | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
  |> String.concat " "

let row_measurements fields =
  List.filter_map
    (fun (k, v) ->
      match v with
      | Obs.Json.Num n when not (identity_num_field k) -> Some (k, n)
      | _ -> None)
    fields

(* Every comparable (section, row key, measurements) triple of a bench
   file: the top-level numeric scalars as one synthetic row, then each
   array-of-objects member as a section. *)
let rows_of json =
  match json with
  | Obs.Json.Obj members ->
    let top =
      ( "(top)",
        "",
        List.filter_map
          (fun (k, v) ->
            match v with
            | Obs.Json.Num n when not (identity_num_field k) -> Some (k, n)
            | _ -> None)
          members )
    in
    let sections =
      List.concat_map
        (fun (k, v) ->
          match v with
          | Obs.Json.List elems ->
            List.filter_map
              (function
                | Obs.Json.Obj fields ->
                  Some (k, row_identity fields, row_measurements fields)
                | _ -> None)
              elems
          | _ -> [])
        members
    in
    Ok (top :: sections)
  | _ -> Error "top level is not an object"

let percent old_v new_v =
  if old_v = 0.0 then None else Some ((new_v -. old_v) /. Float.abs old_v *. 100.0)

let is_regression ~threshold_pct kind pct =
  match (kind, pct) with
  | Gated dir, Some pct -> (
    match dir with
    | Lower_better -> pct > threshold_pct
    | Higher_better -> pct < -.threshold_pct)
  | Gated _, None -> false
  | (Info _ | Count), _ -> false

let compare_parsed ~threshold_pct old_json new_json =
  match (rows_of old_json, rows_of new_json) with
  | Error e, _ -> Error ("old: " ^ e)
  | _, Error e -> Error ("new: " ^ e)
  | Ok old_rows, Ok new_rows ->
    let key (s, k, _) = (s, k) in
    let notes = ref [] in
    let deltas = ref [] in
    List.iter
      (fun (section, row_key, old_fields) ->
        match List.find_opt (fun r -> key r = (section, row_key)) new_rows with
        | None ->
          notes :=
            Printf.sprintf "row only in old: %s[%s]" section row_key :: !notes
        | Some (_, _, new_fields) ->
          List.iter
            (fun (field, old_v) ->
              match List.assoc_opt field new_fields with
              | None ->
                notes :=
                  Printf.sprintf "field only in old: %s[%s].%s" section row_key
                    field
                  :: !notes
              | Some new_v ->
                let kind = kind_of_field field in
                let pct = percent old_v new_v in
                deltas :=
                  {
                    section;
                    row_key;
                    field;
                    kind;
                    old_v;
                    new_v;
                    pct;
                    regression = is_regression ~threshold_pct kind pct;
                  }
                  :: !deltas)
            old_fields)
      old_rows;
    List.iter
      (fun (section, row_key, _) ->
        if
          not
            (List.exists (fun r -> key r = (section, row_key)) old_rows)
        then
          notes :=
            Printf.sprintf "row only in new: %s[%s]" section row_key :: !notes)
      new_rows;
    let deltas =
      List.sort
        (fun a b ->
          match String.compare a.section b.section with
          | 0 -> (
            match String.compare a.row_key b.row_key with
            | 0 -> String.compare a.field b.field
            | c -> c)
          | c -> c)
        !deltas
    in
    Ok
      {
        threshold_pct;
        deltas;
        notes = List.sort String.compare !notes;
        regressions =
          List.length (List.filter (fun d -> d.regression) deltas);
      }

let compare ~threshold_pct ~old_json ~new_json =
  match (Obs.Json.parse_result old_json, Obs.Json.parse_result new_json) with
  | Error e, _ -> Error ("old: not valid JSON: " ^ e)
  | _, Error e -> Error ("new: not valid JSON: " ^ e)
  | Ok o, Ok n -> compare_parsed ~threshold_pct o n

let kind_tag = function
  | Gated Lower_better -> "time"
  | Gated Higher_better -> "rate"
  | Info _ -> "info"
  | Count -> "count"

let to_string r =
  let buf = Buffer.create 1024 in
  let interesting d =
    match d.kind with
    | Gated _ -> true
    | Info _ | Count -> d.old_v <> d.new_v
  in
  List.iter
    (fun d ->
      if interesting d then begin
        let where =
          if d.row_key = "" then d.section
          else Printf.sprintf "%s[%s]" d.section d.row_key
        in
        let pct =
          match d.pct with
          | None -> "   n/a"
          | Some p -> Printf.sprintf "%+6.1f%%" p
        in
        Buffer.add_string buf
          (Printf.sprintf "%-5s %-52s %-30s %14g -> %-14g %s%s\n" (kind_tag d.kind)
             where d.field d.old_v d.new_v pct
             (if d.regression then "  REGRESSION" else ""))
      end)
    r.deltas;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) r.notes;
  let gated = List.filter (fun d -> match d.kind with Gated _ -> true | _ -> false) r.deltas in
  Buffer.add_string buf
    (Printf.sprintf "bench-diff: %d gated measurements, %d regression%s (threshold %g%%)\n"
       (List.length gated) r.regressions
       (if r.regressions = 1 then "" else "s")
       r.threshold_pct);
  Buffer.contents buf
