(** A parallel batch engine on OCaml 5 domains.

    [map ~domains f tasks] runs [f] over [tasks] on up to [domains]
    workers pulling from a shared queue, and returns one {!outcome} per
    task {e in input order} — results are deterministic regardless of
    worker count or scheduling.

    Failure isolation: an exception escaping one task is captured as
    [Failed] for that task only; the rest of the batch proceeds.

    Timeouts are cooperative — domains cannot be killed. When
    [timeout_s] is given, each task gets a per-domain deadline;
    long-running task code (the analysis engine does this between
    pipeline phases) calls {!tick}, which raises {!Timeout} once the
    deadline has passed, and the task is reported as [Timed_out]. A task
    that never ticks simply cannot time out. *)

exception Timeout

type 'b outcome =
  | Done of 'b
  | Failed of string  (** the escaping exception, printed *)
  | Timed_out of float  (** elapsed seconds when the task gave up *)

(** [tick ()] raises {!Timeout} if the current task's deadline has
    passed. A no-op outside a pool task or when no timeout was set. *)
val tick : unit -> unit

(** [map ?timeout_s ?queue_depth ?metrics ~domains f tasks]. [domains]
    is clamped to [1 .. length tasks]; with [domains = 1] everything
    runs on the calling domain (no spawn, no scheduler atomics).
    Otherwise workers run a work-stealing scheduler: per-worker
    Chase-Lev deques, the submitter seeds the task nodes, idle workers
    steal — see docs/SERVICE.md. [queue_depth], when given, is called
    with the number of unclaimed scheduler nodes each time a worker
    dequeues — feed it a {!Metrics.gauge}. [metrics], when given,
    receives per-domain scheduler telemetry: [pool.tasks{domain=N}],
    [pool.steals{domain=N}] and [pool.parks{domain=N}] counters,
    [pool.task_latency{domain=N}] / [pool.queue_wait{domain=N}]
    histograms, per-task GC deltas as [pool.gc.*{domain=N}] counters,
    and [pool.spawn]/[pool.join] cost histograms. *)
val map :
  ?timeout_s:float ->
  ?queue_depth:(int -> unit) ->
  ?metrics:Obs.Instrument.t ->
  domains:int ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array

(** List version of {!map}. *)
val map_list :
  ?timeout_s:float ->
  ?queue_depth:(int -> unit) ->
  ?metrics:Obs.Instrument.t ->
  domains:int ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list

(** [Done x -> Ok x], otherwise [Error message]. *)
val to_result : 'b outcome -> ('b, string) result

(** A sensible worker count for this machine: the domain's recommended
    parallelism, capped at [cap] (default 8). *)
val default_domains : ?cap:int -> unit -> int

(** {2 The persistent pool}

    {!map} pays one [Domain.spawn] per worker per call; on small
    corpora the spawns dominate the analysis. A {!pool} spawns its
    workers once ({!create}) and parks them between jobs, so repeated
    batch passes and serve-mode requests reuse the same domains.
    {!run} has {!map}'s contract — one outcome per task, in input
    order, failures isolated, cooperative timeouts via {!tick}. *)

type pool

(** [create ~domains ()] spawns [domains - 1] worker domains (the
    submitter is worker 0). [domains] defaults to {!default_domains},
    and is clamped to ≥ 1 ([create ~domains:1] spawns nothing; {!run}
    then executes on the calling domain). [metrics] observes the
    spawn/join cost here and in {!shutdown}, and becomes the default
    telemetry registry for every {!run} on this pool. *)
val create : ?domains:int -> ?metrics:Obs.Instrument.t -> unit -> pool

(** Total workers, including the submitting domain. *)
val size : pool -> int

(** [run pool f tasks] — as {!map}, on the pool's resident workers.
    Blocks until every worker has finished the job. Serializes
    concurrent submitters. Raises [Invalid_argument] after
    {!shutdown}. [metrics] overrides the pool's registry for this job
    (see {!map} for what is recorded). *)
val run :
  ?timeout_s:float ->
  ?queue_depth:(int -> unit) ->
  ?metrics:Obs.Instrument.t ->
  pool ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array

(** List version of {!run}. *)
val run_list :
  ?timeout_s:float ->
  ?queue_depth:(int -> unit) ->
  ?metrics:Obs.Instrument.t ->
  pool ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list

(** Stop and join the worker domains. Idempotent; waits for an
    in-flight job to drain first. *)
val shutdown : pool -> unit

(** {2 In-task fork/join}

    [fork_all thunks] evaluates every thunk and returns one outcome
    per thunk, in order — the unit-graph scheduling entry point.

    Called from {e inside} a pool task (a {!map} or {!run} worker),
    the thunks are pushed onto the calling worker's own deque as
    first-class scheduler nodes: idle workers steal them, the caller
    helps with its own nodes, and the call returns when all have
    finished. Subtasks inherit the forking task's deadline, and each
    failure is isolated into its own outcome. The forker never
    executes {e other} tasks while waiting, so forking while holding a
    lock is safe.

    Called from outside a pool task, the work is submitted to [pool]
    as one job when it has more than one worker, and evaluated inline
    (on the calling domain, preserving any ambient deadline)
    otherwise. Never pass a [pool] whose job this call might already
    be running inside — the in-task case is exactly what the worker
    context detects and handles. *)
val fork_all : ?pool:pool -> (unit -> 'a) array -> 'a outcome array

(** True when the calling domain is currently executing a scheduler
    node (so {!fork_all} will fan out onto its deque). *)
val in_worker : unit -> bool
