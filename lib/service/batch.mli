(** Batch analysis: a corpus of named sources, fanned out over a
    {!Pool}, memoized by an {!Engine}.

    Results come back in input order, so a batch run's concatenated
    output is byte-identical whatever the worker count. *)

type item = { name : string; source : string }

(** [report engine ~artifacts item] renders the requested artifacts for
    one item: a single artifact is returned bare; several are
    concatenated under [-- classify --]-style headers. The first
    analysis error wins. [pool] is lent to the engine for unit-level
    fan-out — coordinator contexts only, never from inside a pool
    task. *)
val report :
  ?pool:Pool.pool ->
  Engine.t ->
  artifacts:Engine.artifact list ->
  item ->
  (string, string) result

(** [run ~domains ~engine ~artifacts items] analyzes every item and
    returns per-item reports in input order. [passes] (default 1)
    repeats the whole batch; later passes are served from the cache and
    the reports of the last pass are returned. [timeout_s] is the
    cooperative per-item timeout (see {!Pool}). Worker crashes and
    timeouts surface as [Error] for their item only.

    With [pool], every pass fans out over the resident workers of that
    {!Pool.pool} — no per-pass [Domain.spawn] — and [domains] is
    ignored. Without it, each pass spawns (and joins) its own workers
    as before.

    A single-item batch (with no [timeout_s]) runs on the calling
    domain and lends the workers to the engine instead, so the
    per-unit classification walk fans out — analysis units, not files,
    become the scheduled tasks. *)
val run :
  ?timeout_s:float ->
  ?passes:int ->
  ?pool:Pool.pool ->
  domains:int ->
  engine:Engine.t ->
  artifacts:Engine.artifact list ->
  item list ->
  (item * (string, string) result) list
