type item = { name : string; source : string }

let ensure_nl s =
  if s = "" || s.[String.length s - 1] = '\n' then s else s ^ "\n"

let report ?pool engine ~artifacts item =
  match artifacts with
  | [] -> invalid_arg "Batch.report: no artifacts requested"
  | [ a ] -> Result.map ensure_nl (Engine.render ?pool engine a item.source)
  | artifacts ->
    let rec go buf = function
      | [] -> Ok (Buffer.contents buf)
      | a :: rest -> (
        match Engine.render ?pool engine a item.source with
        | Error msg -> Error msg
        | Ok text ->
          Buffer.add_string buf
            (Printf.sprintf "-- %s --\n" (Engine.artifact_to_string a));
          Buffer.add_string buf (ensure_nl text);
          go buf rest)
    in
    go (Buffer.create 256) artifacts

let run ?timeout_s ?(passes = 1) ?pool ~domains ~engine ~artifacts items =
  let metrics = Engine.metrics engine in
  let depth = Metrics.gauge metrics "pool.queue_depth" in
  let items_counter = Metrics.counter metrics "batch.items" in
  let passes_counter = Metrics.counter metrics "batch.passes" in
  let arr = Array.of_list items in
  (* With a resident pool the spawn already happened; [domains] is
     advisory only (the pool's own size governs). Without one, a
     temporary pool spans every pass. Either way the pool reaches the
     engine through [report], so each item's per-unit classification
     walk forks onto the scheduler — units, not files, are the
     stealable tasks, and a single large file no longer serializes a
     domain (nor a single-item batch the whole pool). *)
  let with_pool k =
    match pool with
    | Some p -> k (Some p)
    | None ->
      if domains <= 1 then k None
      else begin
        let p = Pool.create ~domains ~metrics () in
        Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> k (Some p))
      end
  in
  with_pool @@ fun pool ->
  let fan_out ~queue_depth f tasks =
    match pool with
    | Some p -> Pool.run ?timeout_s ~queue_depth ~metrics p f tasks
    | None -> Pool.map ?timeout_s ~queue_depth ~metrics ~domains:1 f tasks
  in
  let pool_size = match pool with Some p -> Pool.size p | None -> 1 in
  let one_pass p =
    Metrics.incr passes_counter;
    Metrics.incr ~by:(Array.length arr) items_counter;
    Obs.Trace.with_span ~cat:"batch"
      ~attrs:
        [ ("pass", Obs.Trace.Int p);
          ("items", Obs.Trace.Int (Array.length arr));
          ("domains", Obs.Trace.Int pool_size) ]
      "batch.pass"
      (fun () ->
        fan_out ~queue_depth:(Metrics.set_gauge depth)
          (fun item ->
            Obs.Trace.with_span ~cat:"batch"
              ~attrs:[ ("file", Obs.Trace.Str item.name) ]
              "batch.item"
              (fun () -> report ?pool engine ~artifacts item))
          arr)
  in
  let total = max 1 passes in
  let rec go n last = if n <= 0 then last else go (n - 1) (one_pass (total - n + 1)) in
  let outcomes = go total [||] in
  List.mapi
    (fun i item ->
      let result =
        match outcomes.(i) with
        | Pool.Done r -> r
        | o -> ( match Pool.to_result o with Ok r -> r | Error msg -> Error msg)
      in
      (item, result))
    items
