(** Content hashes for cache keys — a re-export of {!Hash.Fnv}, where
    the implementation moved so the analysis pipeline can digest pass
    results without depending on the service layer. See {!Hash.Fnv}. *)

include module type of struct
  include Hash.Fnv
end
