(* LRU cache: a hash table from key to an intrusive doubly-linked node;
   the list is threaded most-recent-first. All public operations hold
   [lock], except the user computation in [find_or_add]. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards head (more recent) *)
  mutable next : ('k, 'v) node option; (* towards tail (less recent) *)
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  lock : Mutex.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  invalidations : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 256) () =
  {
    tbl = Hashtbl.create 64;
    cap = max 1 capacity;
    lock = Mutex.create ();
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
    invalidations = 0;
  }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let capacity c = c.cap
let size c = locked c (fun () -> Hashtbl.length c.tbl)

(* -- list surgery (call with the lock held) -- *)

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  n.prev <- None;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let touch c n =
  if c.head != Some n then begin
    unlink c n;
    push_front c n
  end

let evict_lru c =
  match c.tail with
  | None -> ()
  | Some n ->
    unlink c n;
    Hashtbl.remove c.tbl n.key;
    c.evictions <- c.evictions + 1

let find_locked c k =
  match Hashtbl.find_opt c.tbl k with
  | Some n ->
    c.hits <- c.hits + 1;
    touch c n;
    Some n.value
  | None ->
    c.misses <- c.misses + 1;
    None

let add_locked c k v =
  match Hashtbl.find_opt c.tbl k with
  | Some n ->
    n.value <- v;
    touch c n
  | None ->
    if Hashtbl.length c.tbl >= c.cap then evict_lru c;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace c.tbl k n;
    push_front c n;
    c.insertions <- c.insertions + 1

let find c k = locked c (fun () -> find_locked c k)

(* [peek] is a stat-neutral [find]: no hit/miss accounting, no LRU
   touch. For introspection (invalidation, debug listings) that must
   not perturb the statistics under test. *)
let peek c k =
  locked c (fun () -> Option.map (fun n -> n.value) (Hashtbl.find_opt c.tbl k))
let add c k v = locked c (fun () -> add_locked c k v)

let find_or_add c k f =
  match find c k with
  | Some v -> v
  | None ->
    (* Compute outside the lock: analyses can be slow and must not
       serialize the whole pool. A racing domain may duplicate the
       work; the first [add] wins the slot. *)
    let v = f () in
    locked c (fun () ->
        match Hashtbl.find_opt c.tbl k with
        | Some n -> n.value
        | None ->
          add_locked c k v;
          v)

let invalidate c k =
  locked c (fun () ->
      match Hashtbl.find_opt c.tbl k with
      | None -> false
      | Some n ->
        unlink c n;
        Hashtbl.remove c.tbl k;
        c.invalidations <- c.invalidations + 1;
        true)

let clear c =
  locked c (fun () ->
      c.invalidations <- c.invalidations + Hashtbl.length c.tbl;
      Hashtbl.reset c.tbl;
      c.head <- None;
      c.tail <- None)

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        insertions = c.insertions;
        invalidations = c.invalidations;
        size = Hashtbl.length c.tbl;
        capacity = c.cap;
      })

let reset_stats c =
  locked c (fun () ->
      c.hits <- 0;
      c.misses <- 0;
      c.evictions <- 0;
      c.insertions <- 0;
      c.invalidations <- 0)

let stats_to_string (s : stats) =
  let total = s.hits + s.misses in
  let rate = if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total in
  Printf.sprintf "hits=%d misses=%d hit_rate=%.2f evictions=%d size=%d/%d" s.hits
    s.misses rate s.evictions s.size s.capacity
