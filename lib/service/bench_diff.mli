(** The perf-trajectory gate behind `ivtool bench-diff`: compare two
    BENCH_*.json files row by row, produce typed per-measurement
    deltas, and count regressions.

    Works on this repo's bench JSON shape generically: a top-level
    object whose array members ("runs", "phases") hold rows of scalar
    fields. Row identity is the string/bool fields plus configuration
    numerics ("domains", "nests", "reps"); the rest are measurements.
    Only wall-clock [seconds] (lower is better), [files_per_sec] and
    [speedup_*] (higher is better) are {e gated}; [*_us] breakdowns and
    counters report as informational deltas but never fail the gate. *)

type direction = Lower_better | Higher_better
type kind = Gated of direction | Info of direction | Count

type delta = {
  section : string;  (** "(top)" for top-level scalars, else "runs", … *)
  row_key : string;  (** e.g. [cache=cold domains=4 pool=true] *)
  field : string;
  kind : kind;
  old_v : float;
  new_v : float;
  pct : float option;  (** signed percent change; [None] when old = 0 *)
  regression : bool;
}

type report = {
  threshold_pct : float;
  deltas : delta list;  (** sorted by section, row key, field *)
  notes : string list;  (** rows/fields present on one side only *)
  regressions : int;
}

(** [compare ~threshold_pct ~old_json ~new_json] over raw file
    contents. [Error] on unparsable or non-object input. *)
val compare :
  threshold_pct:float -> old_json:string -> new_json:string ->
  (report, string) result

(** Human-readable rendering: one line per gated measurement (and per
    changed informational field), notes, and a trailing summary line.
    Deterministic for the same inputs. *)
val to_string : report -> string
