(** Data dependence testing over classified subscripts (paper §6): GCD
    and Banerjee-style direction bounds for affine subscripts, coupled
    distance systems across dimensions, and the paper's translations for
    wrap-around, periodic and monotonic subscripts. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Extint = Analysis.Extint

(** Feasible directions between source and sink iteration numbers
    (source R sink). *)
type dirset = { lt : bool; eq : bool; gt : bool }

val all_dirs : dirset
val no_dirs : dirset
val dirset_is_empty : dirset -> bool
val dirset_inter : dirset -> dirset -> dirset

(** Renders as the usual glyphs: [*], [<=], [<>], [<], [=], ... *)
val pp_dirset : Format.formatter -> dirset -> unit

type dependence = {
  directions : (int * dirset) list;  (** per common loop, outer first *)
  distance : (int * int) list option;  (** exact distances when known *)
  holds_after : int;  (** wrap-around order (§6) *)
  exact : bool;  (** false: conservative "maybe" *)
  note : string option;  (** e.g. the periodic translation applied *)
}

type outcome = Independent | Dependent of dependence

(** [maybe common] is the conservative all-directions dependence. *)
val maybe : ?note:string -> int list -> outcome

(** [affine_test ~bounds ~common src dst] tests two affine subscripts;
    [bounds l] is loop [l]'s iteration count when known. [sym_range]
    bounds a symbolic expression to an interval (see [Analysis.Range]);
    when only the constant difference of the dependence equation is
    symbolic, its interval is intersected with the Banerjee bounds —
    an empty gcd-compatible intersection proves independence. *)
val affine_test :
  bounds:(int -> int option) ->
  common:int list ->
  ?sym_range:(Sym.t -> (Extint.t * Extint.t) option) ->
  Affine.t ->
  Affine.t ->
  outcome

type simple_dir = [ `Lt | `Eq | `Gt ]

(** [direction_vectors ~bounds ~common src dst] enumerates the feasible
    full direction vectors by hierarchical refinement with pruning
    ([WB87]); [None] when undecidable or the nest is deeper than 6. *)
val direction_vectors :
  bounds:(int -> int option) ->
  common:int list ->
  Affine.t ->
  Affine.t ->
  simple_dir list list option

val pp_simple_dir : Format.formatter -> simple_dir -> unit

(** [equation_for_distances src dst] views the equation as a constraint
    sum a_L·d_L = c on iteration distances, when source and sink
    coefficients agree per loop. *)
val equation_for_distances : Affine.t -> Affine.t -> ((int * int) list * int) option

(** [solve_distance_system rows] eliminates exactly; [None] proves the
    system inconsistent (independence), otherwise the uniquely determined
    per-loop distances. *)
val solve_distance_system : ((int * int) list * int) list -> (int * int) list option

(** [test ~bounds ~common ?src_def ?dst_def src dst] dispatches on the
    classification pair; the defs identify same-def monotonic subscripts
    (the B(k3)-twice pattern of Fig 10). *)
val test :
  bounds:(int -> int option) ->
  common:int list ->
  ?src_def:Ir.Instr.Id.t ->
  ?dst_def:Ir.Instr.Id.t ->
  ?sym_range:(Sym.t -> (Extint.t * Extint.t) option) ->
  Ivclass.t ->
  Ivclass.t ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
