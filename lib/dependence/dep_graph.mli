(** Loop-nest dependence graphs: every ordered pair of same-array
    references (with at least one write) is tested per subscript
    dimension; surviving edges carry merged directions, coupled-system
    distances, and execution-order filtering (an edge exists only for
    direction vectors compatible with its source running first). *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Driver = Analysis.Driver

type ref_kind = Read | Write

type array_ref = {
  instr : Ir.Instr.Id.t;
  array : Ir.Ident.t;
  kind : ref_kind;
  block : Ir.Label.t;
  subscripts : Ivclass.t list;  (** one classification per dimension *)
  subscript_defs : Ir.Instr.Id.t option list;
  pos : int;  (** program order *)
  loops : int list;  (** enclosing loops, outer first *)
}

type dep_kind = Flow | Anti | Output | Input

type edge = {
  src : array_ref;
  dst : array_ref;
  kind : dep_kind;
  outcome : Deptest.outcome;
}

val kind_to_string : dep_kind -> string

(** [collect_refs t] lists every array reference in program order, with
    subscripts classified in the global (whole-nest) frame. *)
val collect_refs : Driver.t -> array_ref list

(** [common_loops a b]: the loops enclosing both references, outer
    first. *)
val common_loops : array_ref -> array_ref -> int list

(** [strict_region t loop family] is the set of loop blocks where a
    monotonic family value cannot repeat on later iterations — every
    in-loop path onward passes a strict update (paper §5.4's
    "post-dominated by the strictly monotonic assignment"). *)
val strict_region : Driver.t -> int -> int -> Ir.Label.Set.t

(** [build t] is the dependence graph: both directions of every
    same-array pair with at least one write, plus self-output edges for
    writes; subscript strictness is refined by {!strict_region} first.
    Input (read-read) pairs are included only on request. [ranges]
    sharpens the tests two ways: subscript positions with disjoint
    use-site value intervals are independent outright, and symbolic
    constant differences are bounded through [Range.sym_interval] so the
    interval Banerjee path can run where coefficients are symbolic. *)
val build :
  ?include_input:bool -> ?ranges:Analysis.Range.t -> Driver.t -> edge list

(** [direction_vectors_of ~bounds e] intersects per-dimension direction
    vector enumerations, when every dimension is affine and decidable. *)
val direction_vectors_of :
  bounds:(int -> int option) -> edge -> Deptest.simple_dir list list option

val dependent_edges : edge list -> edge list
val pp_edge : Driver.t -> Format.formatter -> edge -> unit
val pp : Driver.t -> Format.formatter -> edge list -> unit
val to_string : Driver.t -> edge list -> string
