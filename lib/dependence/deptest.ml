(* Data dependence testing over classified subscripts (paper §6).

   For affine subscripts the dependence equation

       sum_L a_L h_L  -  sum_L b_L h'_L  =  c

   is tested with the GCD test and Banerjee-style bounds, refined per
   direction (<, =, >) for each common loop. The non-affine classes get
   the paper's translations:

     - wrap-around: the same equation, flagged as holding only after the
       wrap order's first iterations;
     - periodic families: an equality of family members translates into
       a constraint on iteration numbers modulo the period — in the
       relaxation pattern, "=" on members becomes "<>" on iterations;
     - monotonic families: "m = m'" only has solutions compatible with
       the member's monotonicity; strictly monotonic members force the
       "=" direction. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Extint = Analysis.Extint
open Bignum

(* A feasible set of simple directions between source and sink iteration
   numbers (source R sink). *)
type dirset = { lt : bool; eq : bool; gt : bool }

let all_dirs = { lt = true; eq = true; gt = true }
let no_dirs = { lt = false; eq = false; gt = false }
let dirset_is_empty d = (not d.lt) && (not d.eq) && not d.gt

let dirset_inter a b = { lt = a.lt && b.lt; eq = a.eq && b.eq; gt = a.gt && b.gt }

let pp_dirset fmt d =
  let s =
    match (d.lt, d.eq, d.gt) with
    | true, true, true -> "*"
    | true, true, false -> "<="
    | true, false, true -> "<>"
    | true, false, false -> "<"
    | false, true, true -> ">="
    | false, true, false -> "="
    | false, false, true -> ">"
    | false, false, false -> "none"
  in
  Format.pp_print_string fmt s

type dependence = {
  directions : (int * dirset) list; (* per common loop, outer first *)
  distance : (int * int) list option; (* exact distances when known *)
  holds_after : int; (* wrap-around order *)
  exact : bool; (* false: conservative "maybe" *)
  note : string option;
}

type outcome = Independent | Dependent of dependence

let maybe ?note common =
  Dependent
    {
      directions = List.map (fun l -> (l, all_dirs)) common;
      distance = None;
      holds_after = 0;
      exact = false;
      note;
    }

(* --- the affine equation test --- *)

(* Per-loop integer coefficients of the dependence equation. *)
type eq_term = { loop : int; a : int; b : int }

let const_int_of_sym s =
  match Sym.const s with Some r -> Rat.to_int_exact r | None -> None

(* Extract integer coefficients from both affine forms; [None] when a
   step is symbolic (the test is then conservative). *)
let equation (src : Affine.t) (dst : Affine.t) =
  let loops =
    List.sort_uniq Stdlib.compare (Affine.loops src @ Affine.loops dst)
  in
  let terms =
    List.map
      (fun l ->
        match
          ( const_int_of_sym (Affine.coeff src l),
            const_int_of_sym (Affine.coeff dst l) )
        with
        | Some a, Some b -> Some { loop = l; a; b }
        | _ -> None)
      loops
  in
  let c = Sym.sub dst.Affine.const src.Affine.const in
  match (List.for_all Option.is_some terms, const_int_of_sym c) with
  | true, Some c -> Some (List.filter_map Fun.id terms, c)
  | _ ->
    (* Symbolic residue: when the constants differ by a non-constant
       symbol the equation cannot be decided here. *)
    None

(* Like [equation] but the constant difference is kept symbolic; the
   per-loop coefficients must still be integer constants. This is the
   entry point for range sharpening: a caller holding value intervals
   can bound the symbolic constant even when SCCP cannot fold it. *)
let interval_equation (src : Affine.t) (dst : Affine.t) =
  let loops =
    List.sort_uniq Stdlib.compare (Affine.loops src @ Affine.loops dst)
  in
  let terms =
    List.map
      (fun l ->
        match
          ( const_int_of_sym (Affine.coeff src l),
            const_int_of_sym (Affine.coeff dst l) )
        with
        | Some a, Some b -> Some { loop = l; a; b }
        | _ -> None)
      loops
  in
  if List.for_all Option.is_some terms then
    Some
      (List.filter_map Fun.id terms, Sym.sub dst.Affine.const src.Affine.const)
  else None

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* GCD test: an integer solution requires gcd of the coefficients to
   divide the constant. Under an '=' direction the two counters are one
   variable with coefficient (a - b). *)
let gcd_test terms (dirs : (int * [ `Lt | `Eq | `Gt | `Any ]) list) c =
  let g =
    List.fold_left
      (fun g t ->
        match List.assoc_opt t.loop dirs with
        | Some `Eq -> gcd g (t.a - t.b)
        | _ -> gcd (gcd g t.a) t.b)
      0 terms
  in
  if g = 0 then c = 0 else c mod g = 0

(* Banerjee-style bounds by vertex enumeration of each loop's constraint
   polytope; [u] is the iteration count of the loop (h in [0, u-1]),
   [None] when unknown or unbounded. *)
let term_bounds ~(u : int option) ~(dir : [ `Lt | `Eq | `Gt | `Any ]) a b =
  let open Extint in
  let fin_points, rays =
    match (dir, u) with
    | `Eq, Some u ->
      if u < 1 then ([], []) else ([ (a - b) * 0; (a - b) * (u - 1) ], [])
    | `Eq, None -> ([ 0 ], [ a - b ])
    | `Lt, Some u ->
      if u < 2 then ([], [])
      else
        ( [ (a * 0) - (b * 1); (a * 0) - (b * (u - 1)); (a * (u - 2)) - (b * (u - 1)) ],
          [] )
    | `Lt, None -> ([ -b ], [ -b; a - b ])
    | `Gt, Some u ->
      if u < 2 then ([], [])
      else
        ( [ (a * 1) - (b * 0); (a * (u - 1)) - (b * 0); (a * (u - 1)) - (b * (u - 2)) ],
          [] )
    | `Gt, None -> ([ a ], [ a; a - b ])
    | `Any, Some u ->
      if u < 1 then ([], [])
      else
        ( [ 0; -b * (u - 1); a * (u - 1); (a - b) * (u - 1) ],
          [] )
    | `Any, None -> ([ 0 ], [ a; -b; a - b ])
  in
  match fin_points with
  | [] -> None (* infeasible direction (too few iterations) *)
  | first :: _ ->
    let lo = ref (Fin (List.fold_left Stdlib.min first fin_points)) in
    let hi = ref (Fin (List.fold_left Stdlib.max first fin_points)) in
    List.iter
      (fun slope ->
        if slope > 0 then hi := Pos_inf else if slope < 0 then lo := Neg_inf)
      rays;
    Some (!lo, !hi)

(* Feasibility of the equation under a direction assignment. *)
let feasible ~bounds terms dirs c =
  if not (gcd_test terms dirs c) then false
  else begin
    let open Extint in
    let rec sum lo hi = function
      | [] -> Some (lo, hi)
      | t :: rest -> (
        let dir = Option.value ~default:`Any (List.assoc_opt t.loop dirs) in
        match term_bounds ~u:(bounds t.loop) ~dir t.a t.b with
        | None -> None
        | Some (tlo, thi) -> sum (add lo tlo) (add hi thi) rest)
    in
    match sum zero zero terms with
    | None -> false
    | Some (lo, hi) -> le lo (Fin c) && le (Fin c) hi
  end

(* --- range-sharpened feasibility: the constant is an interval --- *)

(* Does the non-empty extended interval [lo, hi] contain a multiple of
   [g] (g > 0)? Unbounded on either side: always (multiples are
   unbounded both ways). *)
let multiple_in g lo hi =
  let open Extint in
  le lo hi
  &&
  match (lo, hi) with
  | Neg_inf, _ | _, Pos_inf -> true
  | Fin lo, Fin hi ->
    (* Largest multiple of g that is <= hi (floor division). *)
    let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
    fdiv hi g * g >= lo
  | Pos_inf, _ | _, Neg_inf -> false

(* Feasibility under a direction assignment when the constant is only
   known to lie in [crange]: a dependence needs some c in the interval
   that the term sum can reach (gcd-compatible multiples only). *)
let interval_feasible ~bounds ~(crange : Extint.t * Extint.t) terms dirs =
  let open Extint in
  let rec sum lo hi = function
    | [] -> Some (lo, hi)
    | t :: rest -> (
      let dir = Option.value ~default:`Any (List.assoc_opt t.loop dirs) in
      match term_bounds ~u:(bounds t.loop) ~dir t.a t.b with
      | None -> None
      | Some (tlo, thi) -> sum (add lo tlo) (add hi thi) rest)
  in
  match sum zero zero terms with
  | None -> false
  | Some (slo, shi) ->
    let clo, chi = crange in
    let lo = max slo clo and hi = min shi chi in
    if not (le lo hi) then false
    else begin
      let g =
        List.fold_left
          (fun g t ->
            match List.assoc_opt t.loop dirs with
            | Some `Eq -> gcd g (t.a - t.b)
            | _ -> gcd (gcd g t.a) t.b)
          0 terms
      in
      if g = 0 then le lo zero && le zero hi else multiple_in g lo hi
    end

(* [interval_affine_test] mirrors [affine_test]'s steady-state path for
   an interval-valued constant: prove independence when no value in the
   interval admits a solution, otherwise refine directions. Distances
   stay unknown (the constant is not a single value). *)
let interval_affine_test ~bounds ~common ~crange terms : outcome =
  if not (interval_feasible ~bounds ~crange terms []) then Independent
  else begin
    let directions =
      List.map
        (fun l ->
          let try_dir d = interval_feasible ~bounds ~crange terms [ (l, d) ] in
          (l, { lt = try_dir `Lt; eq = try_dir `Eq; gt = try_dir `Gt }))
        common
    in
    if List.exists (fun (_, d) -> dirset_is_empty d) directions then Independent
    else
      Dependent
        {
          directions;
          distance = None;
          holds_after = 0;
          exact = false;
          note =
            Some
              (Printf.sprintf "symbolic constant bounded to [%s, %s]"
                 (Extint.to_string (fst crange))
                 (Extint.to_string (snd crange)));
        }
  end

(* --- hierarchical direction-vector enumeration [WB87] --- *)

type simple_dir = [ `Lt | `Eq | `Gt ]

(* [direction_vectors ~bounds ~common src dst] refines the direction
   vector tree (*,...,*) -> (<,*,...) -> ... and returns the feasible
   full vectors, outer loop first. [None] when the subscripts are not
   decidable (symbolic equation) or the nest is too deep to enumerate. *)
let direction_vectors ~(bounds : int -> int option) ~(common : int list)
    (src : Affine.t) (dst : Affine.t) : simple_dir list list option =
  if List.length common > 6 then None
  else
    match equation src dst with
    | None -> None
    | Some (terms, c) ->
      let rec refine fixed = function
        | [] -> if feasible ~bounds terms fixed c then [ List.rev fixed ] else []
        | l :: rest ->
          List.concat_map
            (fun d ->
              let fixed = (l, d) :: fixed in
              (* Prune: skip the whole subtree when already infeasible. *)
              if feasible ~bounds terms fixed c then refine fixed rest else [])
            [ `Lt; `Eq; `Gt ]
      in
      let vectors = refine [] common in
      Some
        (List.map
           (fun assignment ->
             List.map
               (fun (_, d) ->
                 match d with `Lt -> `Lt | `Eq -> `Eq | `Gt -> `Gt | `Any -> `Eq)
               assignment)
           vectors)

let pp_simple_dir fmt (d : simple_dir) =
  Format.pp_print_string fmt (match d with `Lt -> "<" | `Eq -> "=" | `Gt -> ">")

(* [equation_for_distances src dst] views the dependence equation as a
   constraint on per-loop iteration distances d_L = h'_L - h_L, when
   every loop's two coefficients agree: sum a_L d_L = -c. Used by the
   coupled-subscript refinement (e.g. A(i,j) = A(i-1,j) in a triangular
   nest, where dim 2 alone determines no distance but the system does). *)
let equation_for_distances (src : Affine.t) (dst : Affine.t) :
    ((int * int) list * int) option =
  match equation src dst with
  | Some (terms, c) ->
    if List.for_all (fun t -> t.a = t.b) terms then
      Some (List.map (fun t -> (t.loop, t.a)) terms, -c)
    else None
  | None -> None

(* [solve_distance_system rows] solves the linear system of distance
   constraints by exact elimination; returns the loops whose distance is
   uniquely determined, or [None] when the system is inconsistent over
   the rationals (proving independence). *)
let solve_distance_system (rows : ((int * int) list * int) list) :
    (int * int) list option =
  (* Collect variables. *)
  let vars =
    List.sort_uniq Stdlib.compare (List.concat_map (fun (ts, _) -> List.map fst ts) rows)
  in
  let n = List.length vars in
  let index l =
    let rec go i = function
      | [] -> assert false
      | v :: _ when v = l -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 vars
  in
  let m = List.length rows in
  if n = 0 then
    (* No variables: consistent iff every rhs is zero. *)
    if List.for_all (fun (_, c) -> c = 0) rows then Some [] else None
  else begin
    let a = Array.make_matrix m (n + 1) Bignum.Rat.zero in
    List.iteri
      (fun i (ts, c) ->
        List.iter (fun (l, k) -> a.(i).(index l) <- Bignum.Rat.of_int k) ts;
        a.(i).(n) <- Bignum.Rat.of_int c)
      rows;
    (* Gaussian elimination to row echelon, tracking pivot columns. *)
    let pivots = ref [] in
    let row = ref 0 in
    (try
       for col = 0 to n - 1 do
         if !row < m then begin
           let p = ref (-1) in
           for i = !row to m - 1 do
             if !p < 0 && not (Bignum.Rat.is_zero a.(i).(col)) then p := i
           done;
           if !p >= 0 then begin
             let tmp = a.(!row) in
             a.(!row) <- a.(!p);
             a.(!p) <- tmp;
             let inv = Bignum.Rat.inv a.(!row).(col) in
             for j = col to n do
               a.(!row).(j) <- Bignum.Rat.mul inv a.(!row).(j)
             done;
             for i = 0 to m - 1 do
               if i <> !row && not (Bignum.Rat.is_zero a.(i).(col)) then begin
                 let f = a.(i).(col) in
                 for j = col to n do
                   a.(i).(j) <- Bignum.Rat.sub a.(i).(j) (Bignum.Rat.mul f a.(!row).(j))
                 done
               end
             done;
             pivots := (col, !row) :: !pivots;
             incr row
           end
         end
       done
     with Exit -> ());
    (* Inconsistent: a zero row with nonzero rhs. *)
    let inconsistent = ref false in
    for i = 0 to m - 1 do
      let zero_lhs = ref true in
      for j = 0 to n - 1 do
        if not (Bignum.Rat.is_zero a.(i).(j)) then zero_lhs := false
      done;
      if !zero_lhs && not (Bignum.Rat.is_zero a.(i).(n)) then inconsistent := true
    done;
    if !inconsistent then None
    else begin
      (* A pivot row with no other nonzero lhs entries determines its
         variable uniquely. *)
      let determined =
        List.filter_map
          (fun (col, r) ->
            let unique = ref true in
            for j = 0 to n - 1 do
              if j <> col && not (Bignum.Rat.is_zero a.(r).(j)) then unique := false
            done;
            if !unique then
              match Bignum.Rat.to_int_exact a.(r).(n) with
              | Some d -> Some (List.nth vars col, d)
              | None ->
                (* Fractional distance: no integer solution at all. *)
                raise Exit
            else None)
          !pivots
      in
      Some (List.sort Stdlib.compare determined)
    end
  end

let solve_distance_system rows =
  match solve_distance_system rows with
  | exception Exit -> None (* fractional determined distance: independent *)
  | x -> x

(* Dependences through a wrap-around subscript's *first* iterations: the
   steady-state equation only covers h >= order, so each recorded initial
   value is solved against the other side separately (paper §6: the
   relation "holds after k iterations"; the first k must still be
   accounted for). Returns the extra feasible directions on the wrap
   loop, or [None] for "cannot tell" (forces a conservative result). *)
let initial_dirs ~(bounds : int -> int option) ~(wrap_side : Affine.t)
    ~(other : Affine.t) ~(flipped : bool) : dirset option =
  match wrap_side.Affine.wrap_loop with
  | None -> Some no_dirs
  | Some wl -> (
    (* The other side as b*h' + c2 on the wrap loop only. *)
    let other_ok =
      List.for_all (fun (l, _) -> l = wl) other.Affine.terms
      && other.Affine.holds_after = 0
    in
    let b = const_int_of_sym (Affine.coeff other wl) in
    let c2 = const_int_of_sym other.Affine.const in
    if not other_ok then None
    else begin
      match (b, c2) with
      | Some b, Some c2 ->
        let u = bounds wl in
        let dirs = ref no_dirs in
        let add_rel i h' =
          (* Direction between the wrap side's iteration i and the other
             side's iteration h' (swapped when the wrap side is the
             sink). *)
          let lt, eq, gt =
            if i < h' then (true, false, false)
            else if i = h' then (false, true, false)
            else (false, false, true)
          in
          let lt, gt = if flipped then (gt, lt) else (lt, gt) in
          dirs :=
            {
              lt = !dirs.lt || lt;
              eq = !dirs.eq || eq;
              gt = !dirs.gt || gt;
            }
        in
        let ok = ref true in
        List.iteri
          (fun i v ->
            match Sym.const v with
            | None -> ok := false
            | Some v -> (
              match Rat.to_int_exact v with
              | None -> ()
              | Some v ->
                if b = 0 then begin
                  (* Invariant other side: collides on every iteration. *)
                  if v = c2 then begin
                    add_rel i (i + 1);
                    add_rel i i;
                    add_rel i (Stdlib.max 0 (i - 1))
                  end
                end
                else if (v - c2) mod b = 0 then begin
                  let h' = (v - c2) / b in
                  let in_range =
                    h' >= 0 && (match u with Some u -> h' < u | None -> true)
                  in
                  (* Steady range of the other side only; pairs against
                     its own initials are handled by the caller's
                     conservative path. *)
                  if in_range && h' >= other.Affine.holds_after then add_rel i h'
                end))
          wrap_side.Affine.initials;
        if !ok then Some !dirs else None
      | _ -> None
    end)

let dirset_union a b = { lt = a.lt || b.lt; eq = a.eq || b.eq; gt = a.gt || b.gt }

(* [affine_test ~bounds ~common src dst] runs the full test between two
   affine subscripts. [sym_range] bounds a symbolic expression to an
   interval (from `Analysis.Range`); it rescues the equation when only
   the constant difference is symbolic. *)
let affine_test ~(bounds : int -> int option) ~(common : int list)
    ?(sym_range : (Sym.t -> (Extint.t * Extint.t) option) option)
    (src : Affine.t) (dst : Affine.t) : outcome =
  let holds_after = Stdlib.max src.Affine.holds_after dst.Affine.holds_after in
  (* Dependences through the wrap-around initial iterations, analyzed
     separately from the steady-state equation. [None]: unanalyzable,
     forcing a conservative result. *)
  let initial_extra : dirset option =
    if holds_after = 0 then Some no_dirs
    else if src.Affine.holds_after > 0 && dst.Affine.holds_after > 0 then begin
      (* Initial-vs-initial pairs (both sides constant), plus each side's
         initials against the other's steady state. *)
      match
        ( initial_dirs ~bounds ~wrap_side:src ~other:dst ~flipped:false,
          initial_dirs ~bounds ~wrap_side:dst ~other:src ~flipped:true )
      with
      | Some a, Some b ->
        let pairwise = ref (dirset_union a b) in
        let ok = ref true in
        List.iteri
          (fun i v1 ->
            List.iteri
              (fun j v2 ->
                match (Sym.const v1, Sym.const v2) with
                | Some x, Some y ->
                  if Rat.equal x y then
                    pairwise :=
                      dirset_union !pairwise
                        { lt = i < j; eq = i = j; gt = i > j }
                | _ -> ok := false)
              dst.Affine.initials)
          src.Affine.initials;
        if !ok then Some !pairwise else None
      | _ -> None
    end
    else if src.Affine.holds_after > 0 then
      initial_dirs ~bounds ~wrap_side:src ~other:dst ~flipped:false
    else initial_dirs ~bounds ~wrap_side:dst ~other:src ~flipped:true
  in
  let widen_with_initials (steady : outcome) : outcome =
    match initial_extra with
    | Some extra when dirset_is_empty extra -> steady
    | Some extra -> (
      let wl =
        match (src.Affine.wrap_loop, dst.Affine.wrap_loop) with
        | Some l, _ | None, Some l -> l
        | None, None -> -1
      in
      let widen directions =
        List.map
          (fun (l, ds) ->
            if l = wl then (l, dirset_union ds extra) else (l, dirset_union ds all_dirs))
          directions
      in
      match steady with
      | Independent ->
        Dependent
          {
            directions =
              widen (List.map (fun l -> (l, no_dirs)) common);
            distance = None;
            holds_after;
            exact = true;
            note = Some "dependence only through the wrap-around initial values";
          }
      | Dependent d ->
        Dependent
          { d with directions = widen d.directions; distance = None })
    | None -> (
      match steady with
      | Independent ->
        maybe ~note:"wrap-around initial iterations unanalyzed" common
      | Dependent d ->
        Dependent
          {
            d with
            directions = List.map (fun (l, _) -> (l, all_dirs)) d.directions;
            distance = None;
            exact = false;
            note = Some "wrap-around initial iterations unanalyzed";
          })
  in
  match equation src dst with
  | None -> (
    (* Range sharpening: constant coefficients but a symbolic constant
       difference — bound it to an interval and test every value. Kept
       away from wrap-arounds (their initial iterations need the exact
       constant). *)
    let fallback () =
      maybe ~note:"symbolic coefficients; assumed dependent" common
    in
    match sym_range with
    | Some range
      when src.Affine.holds_after = 0 && dst.Affine.holds_after = 0 -> (
      match interval_equation src dst with
      | Some (terms, csym) -> (
        match range csym with
        | Some crange -> interval_affine_test ~bounds ~common ~crange terms
        | None -> fallback ())
      | None -> fallback ())
    | _ -> fallback ())
  | Some (terms, c) ->
    if not (feasible ~bounds terms [] c) then widen_with_initials Independent
    else begin
      (* Refine each common loop's direction with the others at '*'. *)
      let directions =
        List.map
          (fun l ->
            let try_dir d = feasible ~bounds terms [ (l, d) ] c in
            (l, { lt = try_dir `Lt; eq = try_dir `Eq; gt = try_dir `Gt }))
          common
      in
      if List.exists (fun (_, d) -> dirset_is_empty d) directions then
        widen_with_initials Independent
      else begin
        (* Exact distances: per loop with a = b <> 0 and this the only
           loop in the equation (strong SIV). *)
        let distance =
          match terms with
          | [ t ] when t.a = t.b && t.a <> 0 && List.mem t.loop common ->
            (* a(h - h') = c, so the sink-minus-source distance is -c/a. *)
            if c mod t.a = 0 then Some [ (t.loop, -(c / t.a)) ] else None
          | [] -> Some []
          | _ -> None
        in
        (* A known distance sharpens the direction set. *)
        let directions =
          match distance with
          | Some [ (l, d) ] ->
            List.map
              (fun (l', ds) ->
                if l' = l then
                  (l', dirset_inter ds { lt = d > 0; eq = d = 0; gt = d < 0 })
                else (l', ds))
              directions
          | _ -> directions
        in
        if List.exists (fun (_, d) -> dirset_is_empty d) directions then
          widen_with_initials Independent
        else
          widen_with_initials
            (Dependent { directions; distance; holds_after; exact = true; note = None })
      end
    end

(* --- translations for the non-affine classes (§6) --- *)

(* [rotation_of p q] finds s with q.values[i] = p.values[(i+s) mod n],
   i.e. q is the same rotating tuple seen s steps ahead. *)
let rotation_of (p : Ivclass.periodic) (q : Ivclass.periodic) =
  let n = p.Ivclass.period in
  let matches s =
    let ok = ref true in
    for i = 0 to n - 1 do
      if not (Sym.equal q.Ivclass.values.(i) p.Ivclass.values.((i + s) mod n)) then
        ok := false
    done;
    !ok
  in
  let rec find s = if s >= n then None else if matches s then Some s else find (s + 1) in
  find 0

let periodic_test ~common (p : Ivclass.periodic) (q : Ivclass.periodic) : outcome =
  let rotation =
    if p.Ivclass.loop = q.Ivclass.loop && p.Ivclass.period = q.Ivclass.period then
      rotation_of p q
    else None
  in
  match rotation with
  | None -> maybe ~note:"periodic subscripts from different families" common
  | Some rot ->
    (* Express q in p's frame: q(h) = q.values[(h + q.phase) mod n]
       = p.values[(h + q.phase + rot) mod n]. *)
    let q =
      Ivclass.
        {
          q with
          values = Array.copy p.Ivclass.values;
          phase = (q.Ivclass.phase + rot) mod q.Ivclass.period;
        }
    in
    begin
    let values = Array.to_list p.Ivclass.values in
    let consts = List.map Sym.const values in
    let distinct =
      List.for_all Option.is_some consts
      &&
      let cs = List.filter_map Fun.id consts in
      List.length (List.sort_uniq Rat.compare cs) = List.length cs
    in
    if not distinct then
      maybe ~note:"periodic family: initial values not provably distinct" common
    else begin
      (* values[(h+p1) mod p] = values[(h'+p2) mod p] iff
         h - h' = p2 - p1 (mod p). *)
      let period = p.Ivclass.period in
      let shift = ((q.Ivclass.phase - p.Ivclass.phase) mod period + period) mod period in
      let d =
        if shift = 0 then
          (* h = h' (mod p): includes equal iterations. *)
          all_dirs
        else { lt = true; eq = false; gt = true }
      in
      let directions =
        List.map
          (fun l -> if l = p.Ivclass.loop then (l, d) else (l, all_dirs))
          common
      in
      Dependent
        {
          directions;
          distance = None;
          holds_after = 0;
          exact = true;
          note =
            Some
              (if shift = 0 then
                 Printf.sprintf "periodic: dependence only when h = h' (mod %d)" period
               else
                 Printf.sprintf
                   "periodic: members differ by %d (mod %d); '=' impossible" shift
                   period);
        }
    end
  end

let monotonic_test ~common ~(same_def : bool) (m : Ivclass.monotonic)
    (m' : Ivclass.monotonic) : outcome =
  if m.Ivclass.loop <> m'.Ivclass.loop || m.Ivclass.family <> m'.Ivclass.family
     || m.Ivclass.dir <> m'.Ivclass.dir
  then maybe ~note:"monotonic subscripts from different families" common
  else begin
    let d =
      if same_def && m.Ivclass.strict && m'.Ivclass.strict then
        (* A strictly monotonic subscript never repeats: only h = h'. *)
        { lt = false; eq = true; gt = false }
      else
        (* Nondecreasing values can only coincide moving forward. *)
        { lt = true; eq = true; gt = false }
    in
    let directions =
      List.map (fun l -> if l = m.Ivclass.loop then (l, d) else (l, all_dirs)) common
    in
    Dependent
      {
        directions;
        distance = None;
        holds_after = 0;
        exact = false;
        note =
          Some
            (if same_def && m.Ivclass.strict then
               "strictly monotonic: dependence direction (=)"
             else "monotonic: dependence direction (<=)");
      }
  end

(* --- driver over classifications --- *)

let rec strip_wrap = function
  | Ivclass.Wrap { inner; order; _ } ->
    let c, o = strip_wrap inner in
    (c, o + order)
  | c -> (c, 0)

(* [test ~bounds ~common ?src_def ?dst_def src dst] tests a pair of
   subscript classifications. [src_def]/[dst_def] identify the SSA defs
   (used to recognize same-def monotonic pairs). *)
let test ~(bounds : int -> int option) ~(common : int list)
    ?(src_def : Ir.Instr.Id.t option) ?(dst_def : Ir.Instr.Id.t option)
    ?(sym_range : (Sym.t -> (Extint.t * Extint.t) option) option)
    (src_class : Ivclass.t) (dst_class : Ivclass.t) : outcome =
  let src_c, o1 = strip_wrap src_class in
  let dst_c, o2 = strip_wrap dst_class in
  let wrap_order = Stdlib.max o1 o2 in
  let with_wrap outcome =
    match outcome with
    | Dependent d when wrap_order > 0 ->
      Dependent { d with holds_after = Stdlib.max d.holds_after wrap_order }
    | o -> o
  in
  match (Affine.of_class src_class, Affine.of_class dst_class) with
  | Some a, Some b -> affine_test ~bounds ~common ?sym_range a b
  | _ -> (
    match (src_c, dst_c) with
    | Ivclass.Periodic p, Ivclass.Periodic q ->
      with_wrap (periodic_test ~common p q)
    | Ivclass.Monotonic m, Ivclass.Monotonic m' ->
      let same_def =
        match (src_def, dst_def) with
        | Some a, Some b -> Ir.Instr.Id.equal a b
        | _ -> false
      in
      with_wrap (monotonic_test ~common ~same_def m m')
    | Ivclass.Invariant s, Ivclass.Periodic p | Ivclass.Periodic p, Ivclass.Invariant s
      -> (
      (* Invariant vs periodic: independent when the invariant is a
         constant missing from a constant value tuple. *)
      match Sym.const s with
      | Some c
        when Array.for_all
               (fun v ->
                 match Sym.const v with
                 | Some v -> not (Rat.equal v c)
                 | None -> false)
               p.Ivclass.values ->
        Independent
      | _ -> maybe common)
    | _ -> maybe common)

let pp_outcome fmt = function
  | Independent -> Format.pp_print_string fmt "independent"
  | Dependent d ->
    Format.fprintf fmt "dependent (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (l, ds) -> Format.fprintf fmt "L%d:%a" l pp_dirset ds))
      d.directions;
    (match d.distance with
     | Some [] | None -> ()
     | Some ds ->
       Format.fprintf fmt " distance (%a)"
         (Format.pp_print_list
            ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
            (fun fmt (l, n) -> Format.fprintf fmt "L%d:%d" l n))
         ds);
    if d.holds_after > 0 then Format.fprintf fmt " [after %d iterations]" d.holds_after;
    if not d.exact then Format.fprintf fmt " [conservative]";
    (match d.note with Some n -> Format.fprintf fmt " — %s" n | None -> ())
