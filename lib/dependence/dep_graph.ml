(* Loop-nest dependence graphs: every pair of references to the same
   array (with at least one write) is tested per subscript dimension and
   the results merged into a single edge — the structure the loop
   transformations of [PW86, WB87] consume. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Driver = Analysis.Driver
module Trip_count = Analysis.Trip_count
module Range = Analysis.Range
module Interval = Analysis.Interval

type ref_kind = Read | Write

type array_ref = {
  instr : Ir.Instr.Id.t;
  array : Ir.Ident.t;
  kind : ref_kind;
  block : Ir.Label.t;
  subscripts : Ivclass.t list; (* one classification per dimension *)
  subscript_defs : Ir.Instr.Id.t option list; (* defs, for same-def tests *)
  pos : int; (* program order *)
  loops : int list; (* enclosing loops, outer first *)
}

type dep_kind = Flow | Anti | Output | Input

type edge = {
  src : array_ref;
  dst : array_ref;
  kind : dep_kind;
  outcome : Deptest.outcome;
}

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

(* Enclosing loops of a block, outer first. *)
let enclosing_loops (loops : Ir.Loops.t) label =
  let rec up acc = function
    | None -> acc
    | Some id -> up (id :: acc) (Ir.Loops.loop loops id).Ir.Loops.parent
  in
  up [] (Ir.Loops.innermost loops label)

(* Collect every array reference of the program, in program order. *)
let collect_refs (t : Driver.t) : array_ref list =
  let ssa = Driver.ssa t in
  let cfg = Ir.Ssa.cfg ssa in
  let loops = Ir.Ssa.loops ssa in
  let class_of_value (v : Ir.Instr.value) = Driver.global_class_of t v in
  let def_of (v : Ir.Instr.value) =
    match v with Ir.Instr.Def d -> Some d | _ -> None
  in
  let refs = ref [] in
  List.iter
    (fun label ->
      List.iter
        (fun (instr : Ir.Instr.t) ->
          let mk array kind idx =
            refs :=
              {
                instr = instr.Ir.Instr.id;
                array;
                kind;
                block = label;
                subscripts = List.map class_of_value idx;
                subscript_defs = List.map def_of idx;
                (* Instruction ids are assigned in lowering order, which
                   is the program's textual order — block labels are not
                   (a loop's continuation block is created before its
                   body). *)
                pos = instr.Ir.Instr.id;
                loops = enclosing_loops loops label;
              }
              :: !refs
          in
          match instr.Ir.Instr.op with
          | Ir.Instr.Aload a -> mk a Read (Array.to_list instr.Ir.Instr.args)
          | Ir.Instr.Astore a ->
            let n = Array.length instr.Ir.Instr.args in
            mk a Write (Array.to_list (Array.sub instr.Ir.Instr.args 0 (n - 1)))
          | _ -> ())
        (Ir.Cfg.block cfg label).Ir.Cfg.instrs)
    (Ir.Cfg.labels cfg);
  List.sort (fun (a : array_ref) b -> compare a.pos b.pos) !refs

let common_loops a b = List.filter (fun l -> List.mem l b.loops) a.loops

(* Merge per-dimension outcomes into one edge outcome: any independent
   dimension kills the dependence; directions intersect; same-loop
   distances must agree. *)
let merge_outcomes common (outcomes : Deptest.outcome list) : Deptest.outcome =
  let exception Indep in
  try
    let deps =
      List.map
        (function Deptest.Independent -> raise Indep | Deptest.Dependent d -> d)
        outcomes
    in
    match deps with
    | [] ->
      (* No subscripts (scalar array?): treat as always dependent. *)
      Deptest.maybe common
    | first :: rest ->
      let directions =
        List.fold_left
          (fun acc (d : Deptest.dependence) ->
            List.map
              (fun (l, ds) ->
                match List.assoc_opt l d.Deptest.directions with
                | Some ds' -> (l, Deptest.dirset_inter ds ds')
                | None -> (l, ds))
              acc)
          first.Deptest.directions rest
      in
      if List.exists (fun (_, ds) -> Deptest.dirset_is_empty ds) directions then
        raise Indep;
      let distance =
        (* Union of known per-loop distances; conflicts are independence.
           The accumulator is borrowed per-domain scratch — this runs
           once per tested pair, which on a large corpus is the hottest
           allocation site of the dependence pass. *)
        Analysis.Scratch.with_distances @@ fun table ->
        let all_known = ref true in
        List.iter
          (fun (d : Deptest.dependence) ->
            match d.Deptest.distance with
            | None -> all_known := false
            | Some ds ->
              List.iter
                (fun (l, n) ->
                  match Hashtbl.find_opt table l with
                  | Some n' when n' <> n -> raise Indep
                  | _ -> Hashtbl.replace table l n)
                ds)
          deps;
        if !all_known then
          Some (Hashtbl.fold (fun l n acc -> (l, n) :: acc) table []
                |> List.sort Stdlib.compare)
        else None
      in
      Deptest.Dependent
        {
          directions;
          distance;
          holds_after =
            List.fold_left (fun m (d : Deptest.dependence) -> Stdlib.max m d.Deptest.holds_after) 0 deps;
          exact = List.for_all (fun (d : Deptest.dependence) -> d.Deptest.exact) deps;
          note =
            List.find_map (fun (d : Deptest.dependence) -> d.Deptest.note) deps;
        }
  with Indep -> Deptest.Independent

(* Coupled-subscript refinement: when every dimension's equation has
   equal source and sink coefficients, the per-dimension distance
   constraints form a linear system; solving it can pin distances no
   single dimension determines (and can prove independence outright). *)
let coupled_refinement src dst (outcome : Deptest.outcome) : Deptest.outcome =
  match outcome with
  | Deptest.Independent -> outcome
  | Deptest.Dependent d -> (
    let ndims = Stdlib.min (List.length src.subscripts) (List.length dst.subscripts) in
    let rows =
      List.init ndims (fun i ->
          match
            ( Affine.of_class (List.nth src.subscripts i),
              Affine.of_class (List.nth dst.subscripts i) )
          with
          (* The distance system describes the steady state only; a
             wrap-around dimension also depends through its first
             iterations, so refinement must stand back. *)
          | Some a, Some b
            when a.Affine.holds_after = 0 && b.Affine.holds_after = 0 ->
            Deptest.equation_for_distances a b
          | _ -> None)
    in
    if not (List.for_all Option.is_some rows) then outcome
    else begin
      match Deptest.solve_distance_system (List.filter_map Fun.id rows) with
      | None -> Deptest.Independent
      | Some dists ->
        (* Sharpen directions with the determined distances. *)
        let directions =
          List.map
            (fun (l, ds) ->
              match List.assoc_opt l dists with
              | Some n ->
                ( l,
                  Deptest.dirset_inter ds
                    { Deptest.lt = n > 0; eq = n = 0; gt = n < 0 } )
              | None -> (l, ds))
            d.Deptest.directions
        in
        if List.exists (fun (_, ds) -> Deptest.dirset_is_empty ds) directions then
          Deptest.Independent
        else begin
          let distance =
            match d.Deptest.distance with
            | Some old ->
              (* Union, preferring the coupled solution. *)
              let extra = List.filter (fun (l, _) -> not (List.mem_assoc l dists)) old in
              Some (List.sort Stdlib.compare (dists @ extra))
            | None -> if dists = [] then None else Some dists
          in
          Deptest.Dependent { d with directions; distance }
        end
    end)

(* Execution-order filtering: an edge from [src] to [dst] only exists for
   direction vectors compatible with [src] executing first. When [src]
   precedes [dst] textually the same iteration is allowed; otherwise the
   dependence must be carried by some loop. The per-loop approximation
   constrains the outermost common loop (sound: an inner '>' under an
   outer '<' is legal). *)
let time_filter ~src_first common (outcome : Deptest.outcome) : Deptest.outcome =
  match outcome with
  | Deptest.Independent -> Deptest.Independent
  | Deptest.Dependent d -> (
    match common with
    | [] ->
      (* No common loop: only textual order can carry a dependence. *)
      if src_first then outcome else Deptest.Independent
    | outermost :: rest ->
      let directions =
        List.map
          (fun (l, ds) ->
            if l = outermost then
              (l, Deptest.dirset_inter ds { Deptest.lt = true; eq = true; gt = false })
            else (l, ds))
          d.Deptest.directions
      in
      let directions =
        (* With a single common loop and the source textually after the
           sink, the dependence must be strictly loop-carried. *)
        if (not src_first) && rest = [] then
          List.map
            (fun (l, ds) ->
              ( l,
                Deptest.dirset_inter ds { Deptest.lt = true; eq = false; gt = false }
              ))
            directions
        else directions
      in
      if List.exists (fun (_, ds) -> Deptest.dirset_is_empty ds) directions then
        Deptest.Independent
      else Deptest.Dependent { d with directions })

(* --- region strictness (paper §5.4) ---

   "Within the body of the conditional statement (e.g. at the assignment
   to array C), k2 also must be strictly monotonic. One way to detect
   this would be to notice that any uses of k2 in this region are
   post-dominated by the strictly monotonic assignment."

   [strict_region t loop family] is the set of loop blocks from which
   every in-loop path to a latch passes a block containing a *strict*
   member of the monotonic family: a family value used there cannot
   repeat on a later iteration. *)
let strict_region (t : Driver.t) loop_id family : Ir.Label.Set.t =
  let ssa = Driver.ssa t in
  let cfg = Ir.Ssa.cfg ssa in
  let loop = Ir.Loops.loop (Ir.Ssa.loops ssa) loop_id in
  match Driver.loop_result t loop_id with
  | None -> Ir.Label.Set.empty
  | Some r ->
    (* Blocks holding a strict update of this family. *)
    let strict_blocks =
      Ir.Instr.Id.Table.fold
        (fun d c acc ->
          match c with
          | Ivclass.Monotonic m when m.Ivclass.family = family && m.Ivclass.strict ->
            Ir.Label.Set.add (Ir.Cfg.block_of_instr cfg d) acc
          | _ -> acc)
        r.Driver.table Ir.Label.Set.empty
    in
    if Ir.Label.Set.is_empty strict_blocks then Ir.Label.Set.empty
    else begin
      (* Backward fixpoint: good(b) iff b contains a strict update, or b
         continues iterating only through good blocks (paths that leave
         the loop end the activation and cannot produce a repeat). *)
      let latches = loop.Ir.Loops.latches in
      let is_latch b = List.exists (Ir.Label.equal b) latches in
      let good = Hashtbl.create 16 in
      Ir.Label.Set.iter (fun b -> Hashtbl.replace good b true) loop.Ir.Loops.blocks;
      let changed = ref true in
      while !changed do
        changed := false;
        Ir.Label.Set.iter
          (fun b ->
            if Hashtbl.find good b && not (Ir.Label.Set.mem b strict_blocks) then begin
              let fails_here = is_latch b in
              let bad_succ =
                List.exists
                  (fun s ->
                    Ir.Label.Set.mem s loop.Ir.Loops.blocks
                    && not (Ir.Label.equal s loop.Ir.Loops.header)
                    && not (Hashtbl.find good s))
                  (Ir.Cfg.successors cfg b)
              in
              if fails_here || bad_succ then begin
                Hashtbl.replace good b false;
                changed := true
              end
            end)
          loop.Ir.Loops.blocks
      done;
      Ir.Label.Set.filter (fun b -> Hashtbl.find good b) loop.Ir.Loops.blocks
    end

(* Upgrade a reference's monotonic subscript classes using the region
   rule: at a block in the strict region, the family cannot repeat. *)
let refine_ref_strictness (t : Driver.t) (r : array_ref) : array_ref =
  let refined =
    List.map
      (fun c ->
        match c with
        | Ivclass.Monotonic m when not m.Ivclass.strict ->
          let region = strict_region t m.Ivclass.loop m.Ivclass.family in
          if Ir.Label.Set.mem r.block region then
            Ivclass.Monotonic { m with Ivclass.strict = true }
          else c
        | c -> c)
      r.subscripts
  in
  { r with subscripts = refined }

(* A self edge (a write against its own later executions) can never be
   satisfied by the same statement instance: if only the all-equal
   iteration vector remains, there is no dependence. *)
let drop_all_equal (outcome : Deptest.outcome) : Deptest.outcome =
  match outcome with
  | Deptest.Dependent d
    when d.Deptest.directions <> []
         && List.for_all
              (fun (_, ds) ->
                ds.Deptest.eq && (not ds.Deptest.lt) && not ds.Deptest.gt)
              d.Deptest.directions ->
    Deptest.Independent
  | o -> o

(* Range-analysis pre-test: two subscript positions whose use-site value
   intervals never overlap can never index the same cell through this
   dimension — the pair is independent before any equation is built.
   Sound because [Range.interval_at] bounds every value the def computes
   over the whole execution (use-site refined below a counted exit
   test). *)
let range_disjoint ranges (src : array_ref) (dst : array_ref) dim : bool =
  match ranges with
  | None -> false
  | Some r -> (
    match
      (List.nth src.subscript_defs dim, List.nth dst.subscript_defs dim)
    with
    | Some d1, Some d2 when not (Ir.Instr.Id.equal d1 d2) ->
      let i1 = Range.interval_at r ~block:src.block d1
      and i2 = Range.interval_at r ~block:dst.block d2 in
      Interval.meet i1 i2 = None
    | _ -> false)

(* One directed edge, or [None] when disproved. *)
let directed_edge_untraced ?ranges ~bounds (src : array_ref) (dst : array_ref) :
    edge option =
  let kind =
    match (src.kind, dst.kind) with
    | Write, Read -> Flow
    | Read, Write -> Anti
    | Write, Write -> Output
    | Read, Read -> Input
  in
  let common = common_loops src dst in
  let ndims = Stdlib.min (List.length src.subscripts) (List.length dst.subscripts) in
  let sym_range =
    Option.map
      (fun r s ->
        match Range.sym_interval r s with
        | Some iv when not (Interval.is_top iv) ->
          Some (Interval.lo iv, Interval.hi iv)
        | _ -> None)
      ranges
  in
  let outcomes =
    List.init ndims (fun i ->
        if range_disjoint ranges src dst i then Deptest.Independent
        else
          Deptest.test ~bounds ~common
            ?src_def:(List.nth src.subscript_defs i)
            ?dst_def:(List.nth dst.subscript_defs i)
            ?sym_range
            (List.nth src.subscripts i) (List.nth dst.subscripts i))
  in
  let self = src.instr = dst.instr in
  let outcome =
    merge_outcomes common outcomes
    |> coupled_refinement src dst
    |> time_filter ~src_first:(src.pos < dst.pos) common
    |> if self then drop_all_equal else Fun.id
  in
  match outcome with
  | Deptest.Independent -> None
  | Deptest.Dependent _ -> Some { src; dst; kind; outcome }

let ref_kind_string = function Read -> "read" | Write -> "write"

let directed_edge ?ranges ~bounds (src : array_ref) (dst : array_ref) :
    edge option =
  if not (Obs.Trace.enabled ()) then
    directed_edge_untraced ?ranges ~bounds src dst
  else
    Obs.Trace.with_span ~cat:"deptest"
      ~attrs:
        [ ("array", Obs.Trace.Str (Ir.Ident.name src.array));
          ("src", Obs.Trace.Str (ref_kind_string src.kind));
          ("dst", Obs.Trace.Str (ref_kind_string dst.kind)) ]
      "deptest.pair"
      (fun () ->
        let e = directed_edge_untraced ?ranges ~bounds src dst in
        Obs.Trace.add_attrs
          [ ( "outcome",
              Obs.Trace.Str
                (match e with
                 | None -> "independent"
                 | Some e -> kind_to_string e.kind) ) ];
        e)

(* [build ?include_input t] is the dependence graph of the program: both
   directions of every same-array pair with at least one write are
   tested, and only surviving (possibly conservative) edges are kept. *)
let build ?(include_input = false) ?ranges (t : Driver.t) : edge list =
  Obs.Trace.with_span ~cat:"deptest" "deptest.build" @@ fun () ->
  let refs = List.map (refine_ref_strictness t) (collect_refs t) in
  (* Iteration-count bounds for the Banerjee tests: an exact count when
     available, else the multi-exit maximum (paper §5.2: "useful for
     dependence testing, to place bounds on the solution space"). *)
  let bounds l =
    let trip = Driver.trip_count t l in
    match Trip_count.count_int trip with
    | Some n -> Some n
    | None -> Trip_count.max_count_int trip
  in
  let edges = ref [] in
  let rec pairs = function
    | [] -> ()
    | (r1 : array_ref) :: rest ->
      (* A write also depends on itself across iterations (output): the
         self-edge is how the §5.4 strict-region rule shows C(k2)'s
         cells are written at most once. *)
      if r1.kind = Write then begin
        match directed_edge ?ranges ~bounds r1 r1 with
        | Some e -> edges := e :: !edges
        | None -> ()
      end;
      List.iter
        (fun r2 ->
          if Ir.Ident.equal r1.array r2.array
             && (r1.kind = Write || r2.kind = Write || include_input)
          then begin
            (match directed_edge ?ranges ~bounds r1 r2 with
             | Some e -> edges := e :: !edges
             | None -> ());
            match directed_edge ?ranges ~bounds r2 r1 with
            | Some e -> edges := e :: !edges
            | None -> ()
          end)
        rest;
      pairs rest
  in
  pairs refs;
  List.rev !edges

(* [direction_vectors_of ~bounds edge] enumerates full direction vectors
   for an edge whose every dimension is affine, intersecting the
   per-dimension vector sets (used by interchange legality for
   precision beyond the per-loop direction summary). *)
let direction_vectors_of ~(bounds : int -> int option) (e : edge) :
    Deptest.simple_dir list list option =
  let common = common_loops e.src e.dst in
  let ndims = Stdlib.min (List.length e.src.subscripts) (List.length e.dst.subscripts) in
  let per_dim =
    List.init ndims (fun i ->
        match
          ( Affine.of_class (List.nth e.src.subscripts i),
            Affine.of_class (List.nth e.dst.subscripts i) )
        with
        | Some a, Some b -> Deptest.direction_vectors ~bounds ~common a b
        | _ -> None)
  in
  if List.for_all Option.is_some per_dim then begin
    match List.filter_map Fun.id per_dim with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc vs -> List.filter (fun v -> List.mem v vs) acc)
           first rest)
  end
  else None

(* [dependent_edges g] keeps the edges whose dependence was not
   disproved. *)
let dependent_edges g =
  List.filter (fun e -> e.outcome <> Deptest.Independent) g

let pp_edge (t : Driver.t) fmt e =
  let name id = Ir.Ssa.primary_name (Driver.ssa t) id in
  Format.fprintf fmt "%s %s@%s -> %s@%s: %a" (kind_to_string e.kind)
    (Ir.Ident.name e.src.array) (name e.src.instr) (Ir.Ident.name e.dst.array)
    (name e.dst.instr) Deptest.pp_outcome e.outcome

let pp (t : Driver.t) fmt g =
  Format.fprintf fmt "@[<v>";
  List.iter (fun e -> Format.fprintf fmt "%a@," (pp_edge t) e) g;
  Format.fprintf fmt "@]"

let to_string t g = Format.asprintf "%a" (pp t) g
