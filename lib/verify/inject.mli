(** Fault injection for the verifier's own test surface: deliberately
    corrupt a well-formed SSA program so the structural checkers have
    something real to catch. Each kind maps to a stable diagnostic code,
    which is what the golden tests and the CI smoke test pin down. *)

type kind =
  | Phi_arity  (** drop a phi argument — caught as [SSA001] *)
  | Dangling_def  (** point an operand at a missing instruction — [SSA005] *)
  | Bad_edge  (** jump to a block outside the graph — [CFG001] *)
  | Nondom_use  (** use a def that does not dominate the use — [SSA004] *)

val kinds : (string * kind) list

val of_string : string -> kind option
val to_string : kind -> string

(** The diagnostic code the corruption must provoke. *)
val expected_code : kind -> string

(** [apply kind ssa] mutates the SSA in place; [Ok desc] describes the
    corruption, [Error _] when the program has no suitable site (e.g. no
    phi to break). *)
val apply : kind -> Ir.Ssa.t -> (string, string) result
