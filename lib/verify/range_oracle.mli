(** The range-analysis soundness oracle: interpret and assert every
    computed value lies inside the interval the range analysis reported
    for its def — the full interval (RNG001) and the body-refined
    interval at the def's own block (RNG002). Top intervals are not
    counted as checks. *)

type result = {
  diags : Ir.Diag.t list;
  checked : int;  (** non-top interval memberships asserted *)
  vars : int;  (** distinct defs with at least one check *)
  max_h : int;
  out_of_fuel : bool;
}

(** [check t r] interprets under [params]/[rand] with [fuel], bounding
    per-loop checks at [iters] (like {!Oracle.check}); [tag] suffixes
    diagnostics so multi-run reports stay distinguishable. *)
val check :
  ?iters:int ->
  ?fuel:int ->
  ?max_diags:int ->
  ?params:(Ir.Ident.t -> int) ->
  ?rand:(unit -> bool) ->
  ?arrays:((Ir.Ident.t * int list) * int) list ->
  ?tag:string ->
  Analysis.Driver.t ->
  Analysis.Range.t ->
  result
