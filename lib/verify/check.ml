(* Checked-mode report assembly and rendering. *)

module Diag = Ir.Diag

type part = {
  family : string;
  note : string;
  checks : int;
  diags : Ir.Diag.t list;
}

type report = { parts : part list }

let structural_part ?lower (ssa : Ir.Ssa.t) : part =
  let diags = Structural.check_ir ?lower ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let count_cfg c = Ir.Cfg.num_instrs c + Ir.Cfg.num_blocks c in
  let checks =
    count_cfg cfg
    + Ir.Loops.num_loops (Ir.Ssa.loops ssa)
    + (match lower with Some c -> count_cfg c | None -> 0)
  in
  let note =
    Printf.sprintf "%d instructions, %d blocks, %d loops%s"
      (Ir.Cfg.num_instrs cfg) (Ir.Cfg.num_blocks cfg)
      (Ir.Loops.num_loops (Ir.Ssa.loops ssa))
      (match lower with
       | Some c -> Printf.sprintf " (+ lowered CFG: %d blocks)" (Ir.Cfg.num_blocks c)
       | None -> "")
  in
  { family = "structural"; note; checks; diags }

(* Two fixed valuations so a classification that only holds for one
   accidental input is still caught. Everything here is deterministic —
   parameter values derive from the variable's name, the '??' streams
   from fixed seeds — so the rendered report is byte-stable across runs
   and worker domains (the batch determinism CI step diffs it). *)
let valuation ~base ~modulus x =
  let name = Ir.Ident.name x in
  let sum = ref 0 in
  String.iter (fun c -> sum := !sum + Char.code c) name;
  base + (!sum mod modulus)

let oracle_runs =
  [
    ("run-a", (fun x -> valuation ~base:70 ~modulus:37 x), 7);
    ("run-b", (fun x -> valuation ~base:2 ~modulus:5 x), 23);
  ]

let oracle_part ?(iters = 100) (t : Analysis.Driver.t) : part =
  let results =
    List.map
      (fun (tag, params, seed) ->
        let state = Random.State.make [| seed |] in
        Oracle.check ~iters ~fuel:200_000 ~params
          ~rand:(fun () -> Random.State.bool state)
          ~tag t)
      oracle_runs
  in
  let diags = List.concat_map (fun (r : Oracle.result) -> r.Oracle.diags) results in
  let checked = List.fold_left (fun a (r : Oracle.result) -> a + r.Oracle.checked) 0 results in
  let vars =
    List.fold_left (fun a (r : Oracle.result) -> max a r.Oracle.vars) 0 results
  in
  let max_h =
    List.fold_left (fun a (r : Oracle.result) -> max a r.Oracle.max_h) 0 results
  in
  let note =
    Printf.sprintf "%d runs, N=%d: %d predictions over %d variables, max h=%d"
      (List.length results) iters checked vars max_h
  in
  { family = "oracle"; note; checks = checked; diags }

let ranges_part ?(iters = 100) (t : Analysis.Driver.t) (r : Analysis.Range.t) :
    part =
  let results =
    List.map
      (fun (tag, params, seed) ->
        let state = Random.State.make [| seed |] in
        Range_oracle.check ~iters ~fuel:200_000 ~params
          ~rand:(fun () -> Random.State.bool state)
          ~tag t r)
      oracle_runs
  in
  let diags =
    List.concat_map (fun (x : Range_oracle.result) -> x.Range_oracle.diags) results
  in
  let checked =
    List.fold_left
      (fun a (x : Range_oracle.result) -> a + x.Range_oracle.checked)
      0 results
  in
  let vars =
    List.fold_left
      (fun a (x : Range_oracle.result) -> max a x.Range_oracle.vars)
      0 results
  in
  let max_h =
    List.fold_left
      (fun a (x : Range_oracle.result) -> max a x.Range_oracle.max_h)
      0 results
  in
  let note =
    Printf.sprintf "%d runs, N=%d: %d interval checks over %d defs, max h=%d"
      (List.length results) iters checked vars max_h
  in
  { family = "ranges"; note; checks = checked; diags }

let transform_part ?fuel (p : Ir.Ast.program) : part =
  let r = Transforms.check ?fuel p in
  let note =
    Printf.sprintf "%d transforms validated, %d array cells compared"
      r.Transforms.transforms r.Transforms.cells
  in
  {
    family = "transforms";
    note;
    checks = r.Transforms.transforms + r.Transforms.cells;
    diags = r.Transforms.diags;
  }

let all_diags r = List.concat_map (fun p -> p.diags) r.parts
let errors r = fst (Diag.count (all_diags r))
let warnings r = snd (Diag.count (all_diags r))
let checks r = List.fold_left (fun a p -> a + p.checks) 0 r.parts

let part_to_text p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n%s\n" p.family p.note);
  (match p.diags with
   | [] -> Buffer.add_string buf "ok\n"
   | diags ->
     List.iter
       (fun d -> Buffer.add_string buf (Diag.to_string d ^ "\n"))
       diags);
  Buffer.contents buf

let to_text r =
  String.concat "" (List.map part_to_text r.parts)
  ^ Printf.sprintf "check: %d errors, %d warnings, %d checks\n" (errors r)
      (warnings r) (checks r)

(* -- JSON (hand-rendered; lib/obs ships only a parser) -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_to_json (d : Diag.t) =
  Printf.sprintf
    {|{"severity":"%s","code":"%s","origin":"%s","loc":"%s","message":"%s"}|}
    (Diag.severity_to_string d.Diag.severity)
    (json_escape d.Diag.code) (json_escape d.Diag.origin)
    (json_escape (Diag.location_to_string d.Diag.loc))
    (json_escape d.Diag.message)

let part_to_json p =
  Printf.sprintf {|{"family":"%s","note":"%s","checks":%d,"diagnostics":[%s]}|}
    (json_escape p.family) (json_escape p.note) p.checks
    (String.concat "," (List.map diag_to_json p.diags))

let to_json r =
  Printf.sprintf {|{"errors":%d,"warnings":%d,"checks":%d,"parts":[%s]}|}
    (errors r) (warnings r) (checks r)
    (String.concat "," (List.map part_to_json r.parts))
  ^ "\n"

let run ?iters src =
  match Ir.Parser.parse_result src with
  | Error e -> Error e
  | Ok prog ->
    let lower = Ir.Lower.lower prog in
    let ssa = Ir.Ssa.of_program prog in
    let structural = structural_part ~lower ssa in
    (* Only analyze (and interpret) structurally sound programs. *)
    if List.exists Diag.is_error structural.diags then
      Ok { parts = [ structural ] }
    else
      let t = Analysis.Driver.analyze ssa in
      let r = Analysis.Driver.ranges t in
      Ok
        {
          parts =
            [
              structural;
              oracle_part ?iters t;
              ranges_part ?iters t r;
              transform_part prog;
            ];
        }
