(** Structural verifiers: CFG well-formedness, SSA invariants, looptree
    consistency. Pure checks over already-built IR; every finding is an
    {!Ir.Diag.t} with a stable code.

    Codes:
    - [CFG001] terminator targets a block outside the graph
    - [CFG002] instruction id defined in two blocks
    - [CFG003] operand or branch condition names a missing instruction
    - [CFG004] block unreachable from the entry (informational: an
      infinite loop's exit block is legitimately unreachable)
    - [CFG005] the entry block has predecessors
    - [SSA001]..[SSA005] — see {!Ir.Ssa.check}
    - [LOOP001] header not a member of its own loop
    - [LOOP002] latch not a member of the loop
    - [LOOP003] latch has no edge to the header
    - [LOOP004] header does not dominate a member block
    - [LOOP005] child loop not contained in its parent
    - [LOOP006] parent/child links asymmetric
    - [LOOP007] depth inconsistent with nesting
    - [VRF999] a checker itself crashed (internal) *)

(** [check_cfg ?origin cfg] verifies graph shape: every edge lands on a
    real block, instruction ids are unique, operands resolve, the entry
    has no predecessors. Unreachable blocks are reported at [Info]
    severity.
    [origin] tags the diagnostics (default ["cfg"]); the verify pipeline
    uses it to tell the pristine lowered CFG from the SSA-form one. *)
val check_cfg : ?origin:string -> Ir.Cfg.t -> Ir.Diag.t list

(** [check_ssa ssa] is {!Ir.Ssa.check}. *)
val check_ssa : Ir.Ssa.t -> Ir.Diag.t list

(** [check_loops ssa] verifies the loop forest against the dominator
    tree: header membership and dominance, latch back edges, child
    containment, link symmetry, depth. *)
val check_loops : Ir.Ssa.t -> Ir.Diag.t list

(** [check_ir ?lower ssa] runs every structural family: the pristine
    lowered CFG when given, then the SSA-form CFG, SSA invariants and
    the looptree. When the SSA-form CFG has dangling edges ([CFG001])
    the deeper checks are skipped — they index by block label and would
    only crash. Checker exceptions become [VRF999] diagnostics. *)
val check_ir : ?lower:Ir.Cfg.t -> Ir.Ssa.t -> Ir.Diag.t list
