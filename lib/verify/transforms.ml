(* Transform validators: structural re-verification plus a differential
   interpretation against the untransformed program. *)

module Diag = Ir.Diag

type result = { diags : Ir.Diag.t list; transforms : int; cells : int }

(* Final array contents under a fixed input valuation and '??' stream;
   None when the interpreter ran out of fuel (infinite loops under this
   valuation — the differential is then meaningless). *)
let footprint ~fuel ~params ~seed ssa =
  let state = Random.State.make [| seed |] in
  let st =
    Ir.Interp.run ~fuel ~params ~rand:(fun () -> Random.State.bool state) ssa
  in
  match st.Ir.Interp.outcome with
  | Ir.Interp.Out_of_fuel -> None
  | Ir.Interp.Halted ->
    Some
      (Hashtbl.fold
         (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
         st.Ir.Interp.arrays []
      |> List.sort compare)

let check ?(fuel = 200_000) ?(seed = 7) ?(params = fun _ -> 0)
    (p : Ir.Ast.program) : result =
  let diags = ref [] in
  let transforms = ref 0 in
  let cells = ref 0 in
  let add d = diags := d :: !diags in
  let base = footprint ~fuel ~params ~seed (Ir.Ssa.of_program p) in
  (* Structural diagnostics after a rewrite keep their codes but name
     the transform as origin, so `error[SSA004] licm (...)` reads as
     "LICM broke dominance". *)
  let structural name ssa =
    List.iter
      (fun (d : Diag.t) -> add { d with Diag.origin = name })
      (Structural.check_cfg ~origin:name (Ir.Ssa.cfg ssa)
      @ Ir.Ssa.check ssa)
  in
  let differential name ssa =
    match (base, footprint ~fuel ~params ~seed ssa) with
    | Some before, Some after ->
      cells := !cells + List.length before;
      if before <> after then begin
        let extra =
          List.filter (fun c -> not (List.mem c before)) after
        in
        let missing =
          List.filter (fun c -> not (List.mem c after)) before
        in
        let show (a, idx, v) =
          Printf.sprintf "%s(%s)=%d" a
            (String.concat "," (List.map string_of_int idx))
            v
        in
        add
          (Diag.v ~code:"TRN002" ~origin:name
             "array footprint diverges from the untransformed program \
              (%d cells changed, e.g. %s)"
             (List.length extra + List.length missing)
             (match (extra, missing) with
              | c :: _, _ -> show c
              | [], c :: _ -> "missing " ^ show c
              | [], [] -> "reordered"))
      end
    | None, _ | _, None ->
      add
        (Diag.v ~severity:Diag.Info ~code:"TRN000" ~origin:name
           "differential skipped: out of fuel under this valuation")
  in
  let validate name apply =
    incr transforms;
    match
      let ssa = Ir.Ssa.of_program p in
      apply ssa;
      ssa
    with
    | ssa ->
      structural name ssa;
      differential name ssa
    | exception e ->
      add
        (Diag.v ~code:"TRN001" ~origin:name "transform raised: %s"
           (Printexc.to_string e))
  in
  validate "dce" (fun ssa -> ignore (Transform.Dce.run (Ir.Ssa.cfg ssa)));
  validate "licm" (fun ssa ->
      ignore (Transform.Licm.hoist (Analysis.Driver.analyze ssa)));
  validate "strength" (fun ssa ->
      ignore (Transform.Strength_reduction.reduce (Analysis.Driver.analyze ssa)));
  (* Normalization rewrites the AST, not the CFG; a body assigning its
     own index is documented to be rejected, which is not a finding. *)
  incr transforms;
  (match Transform.Normalize.normalize p with
   | p' ->
     let ssa = Ir.Ssa.of_program p' in
     structural "normalize" ssa;
     differential "normalize" ssa
   | exception Invalid_argument msg ->
     add
       (Diag.v ~severity:Diag.Info ~code:"TRN000" ~origin:"normalize"
          "normalization skipped: %s" msg)
   | exception e ->
     add
       (Diag.v ~code:"TRN001" ~origin:"normalize" "transform raised: %s"
          (Printexc.to_string e)));
  (* Bounds-check elimination. The differential here is not against the
     untransformed program (guards legitimately suppress out-of-bounds
     stores) but between the fully-checked and the optimized-checked
     programs: if elimination ever drops a guard that would have fired,
     the optimized footprint gains a store the fully-checked program
     suppressed (TRN003). *)
  incr transforms;
  (match
     let ssa = Ir.Ssa.of_program p in
     let t = Analysis.Driver.analyze ssa in
     let r = Analysis.Driver.ranges t in
     let full = Transform.Bounds_elim.instrument p in
     let opt = Transform.Bounds_elim.optimize r ssa p in
     (full, opt)
   with
   | full, opt ->
     let ssa_opt = Ir.Ssa.of_program opt in
     structural "bounds" ssa_opt;
     (match
        ( footprint ~fuel ~params ~seed (Ir.Ssa.of_program full),
          footprint ~fuel ~params ~seed ssa_opt )
      with
      | Some checked, Some optimized ->
        cells := !cells + List.length checked;
        if checked <> optimized then
          add
            (Diag.v ~code:"TRN003" ~origin:"bounds"
               "optimized-checked footprint diverges from fully-checked                 (%d cells differ): an eliminated bounds check would have                 fired"
               (List.length
                  (List.filter
                     (fun c -> not (List.mem c checked))
                     optimized)
               + List.length
                   (List.filter
                      (fun c -> not (List.mem c optimized))
                      checked)))
      | None, _ | _, None ->
        add
          (Diag.v ~severity:Diag.Info ~code:"TRN000" ~origin:"bounds"
             "differential skipped: out of fuel under this valuation"))
   | exception e ->
     add
       (Diag.v ~code:"TRN001" ~origin:"bounds" "transform raised: %s"
          (Printexc.to_string e)));
  { diags = List.rev !diags; transforms = !transforms; cells = !cells }
