(** Transform validators (checker family 3).

    Each rewriting pass — DCE, LICM, strength reduction, loop
    normalization — is applied to a fresh SSA conversion of the program
    (the transforms mutate their CFG in place, so every one gets its own
    copy), then validated two ways: the structural verifiers re-run over
    the rewritten IR (their diagnostics keep their [CFG*]/[SSA*] codes
    but carry the transform's name as origin), and the rewritten program
    is interpreted against the untransformed one under identical inputs
    and random streams, comparing final array contents — the semantic
    footprint the dependence tests care about.

    Codes: [TRN001] a transform raised, [TRN002] footprint divergence
    after a transform, [TRN000] (info) differential skipped because the
    program ran out of fuel. *)

type result = {
  diags : Ir.Diag.t list;
  transforms : int;  (** validators that ran *)
  cells : int;  (** array cells compared across all differentials *)
}

(** [check p] validates every transform of the program. [params]/[seed]
    fix the inputs and the '??' stream for both sides of each
    differential run. *)
val check :
  ?fuel:int ->
  ?seed:int ->
  ?params:(Ir.Ident.t -> int) ->
  Ir.Ast.program ->
  result
