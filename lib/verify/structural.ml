(* Structural verifiers over built IR. These run after passes that
   mutate the CFG in place (SSA conversion, the rewriting transforms),
   so they defend first against shapes that would crash the deeper
   checks: a terminator into a missing block makes pred_table and the
   dominator computations index out of range, so CFG001 short-circuits
   everything else. *)

module Diag = Ir.Diag
module Cfg = Ir.Cfg
module Dom = Ir.Dom
module Loops = Ir.Loops
module Instr = Ir.Instr
module Label = Ir.Label

let check_cfg ?(origin = "cfg") (cfg : Cfg.t) : Diag.t list =
  let n = Cfg.num_blocks cfg in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ?severity ~loc code fmt =
    Format.kasprintf
      (fun s -> add (Diag.v ?severity ~loc ~code ~origin "%s" s))
      fmt
  in
  (* Edge symmetry with the block table: every target must exist. *)
  let dangling = ref false in
  List.iter
    (fun l ->
      let target t =
        if t < 0 || t >= n then begin
          dangling := true;
          err ~loc:(Diag.Edge (l, t)) "CFG001"
            "terminator of block %d targets missing block %d" l t
        end
      in
      match (Cfg.block cfg l).Cfg.term with
      | Cfg.Jump t -> target t
      | Cfg.Branch (_, t, f) ->
        target t;
        target f
      | Cfg.Halt -> ())
    (Cfg.labels cfg);
  if !dangling then List.rev !diags
  else begin
    (* Unique definitions: one block per instruction id. *)
    let seen : Label.t Instr.Id.Table.t = Instr.Id.Table.create 64 in
    Cfg.iter_instrs cfg (fun l instr ->
        let id = instr.Instr.id in
        match Instr.Id.Table.find_opt seen id with
        | Some first ->
          err ~loc:(Diag.Instr id) "CFG002"
            "instruction %%%d defined in block %d and again in block %d" id first l
        | None -> Instr.Id.Table.add seen id l);
    (* Operands and branch conditions resolve to live instructions. *)
    let check_value l at (v : Instr.value) =
      match v with
      | Instr.Def d ->
        if not (Instr.Id.Table.mem seen d) then
          err ~loc:at "CFG003" "%s in block %d names missing instruction %%%d"
            (Diag.location_to_string at) l d
      | Instr.Const _ | Instr.Param _ -> ()
    in
    Cfg.iter_instrs cfg (fun l instr ->
        Array.iter (check_value l (Diag.Instr instr.Instr.id)) instr.Instr.args);
    List.iter
      (fun l ->
        match (Cfg.block cfg l).Cfg.term with
        | Cfg.Branch (cond, t, _) -> check_value l (Diag.Edge (l, t)) cond
        | Cfg.Jump _ | Cfg.Halt -> ())
      (Cfg.labels cfg);
    (* Unique entry: nothing jumps back into it. *)
    let entry = Cfg.entry cfg in
    (match Cfg.predecessors cfg entry with
     | [] -> ()
     | preds ->
       err ~loc:(Diag.Block entry) "CFG005"
         "entry block %d has %d predecessors" entry (List.length preds));
    (* Reachability: dead blocks are not unsound, and legitimate
       programs produce them (an infinite loop's exit block), so this
       is informational, not a warning. *)
    let reach = Cfg.reachable cfg in
    List.iter
      (fun l ->
        if not reach.(l) then
          err ~severity:Diag.Info ~loc:(Diag.Block l) "CFG004"
            "block %d is unreachable from the entry" l)
      (Cfg.labels cfg);
    List.rev !diags
  end

let check_ssa = Ir.Ssa.check

let check_loops (ssa : Ir.Ssa.t) : Diag.t list =
  let cfg = Ir.Ssa.cfg ssa in
  let dom = Ir.Ssa.dom ssa in
  let loops = Ir.Ssa.loops ssa in
  let origin = "looptree" in
  let diags = ref [] in
  let err ~loc code fmt =
    Format.kasprintf
      (fun s -> diags := Diag.v ~loc ~code ~origin "%s" s :: !diags)
      fmt
  in
  List.iter
    (fun (lp : Loops.loop) ->
      let loc = Diag.Loop lp.Loops.name in
      if not (Label.Set.mem lp.Loops.header lp.Loops.blocks) then
        err ~loc "LOOP001" "header block %d is not a member of the loop"
          lp.Loops.header;
      List.iter
        (fun latch ->
          if not (Label.Set.mem latch lp.Loops.blocks) then
            err ~loc "LOOP002" "latch block %d is not a member of the loop" latch
          else if not (List.mem lp.Loops.header (Cfg.successors cfg latch)) then
            err ~loc "LOOP003" "latch block %d has no edge to header %d" latch
              lp.Loops.header)
        lp.Loops.latches;
      Label.Set.iter
        (fun b ->
          if Dom.is_reachable dom b && not (Dom.dominates dom lp.Loops.header b)
          then
            err ~loc "LOOP004" "header %d does not dominate member block %d"
              lp.Loops.header b)
        lp.Loops.blocks;
      (match lp.Loops.parent with
       | None ->
         if lp.Loops.depth <> 1 then
           err ~loc "LOOP007" "root loop has depth %d (expected 1)" lp.Loops.depth
       | Some pid ->
         let p = Loops.loop loops pid in
         if not (Label.Set.subset lp.Loops.blocks p.Loops.blocks) then
           err ~loc "LOOP005" "loop is not contained in its parent %s"
             p.Loops.name;
         if not (List.mem lp.Loops.id p.Loops.loop_children) then
           err ~loc "LOOP006" "parent %s does not list this loop as a child"
             p.Loops.name;
         if lp.Loops.depth <> p.Loops.depth + 1 then
           err ~loc "LOOP007" "depth %d inconsistent with parent %s at depth %d"
             lp.Loops.depth p.Loops.name p.Loops.depth);
      List.iter
        (fun cid ->
          let c = Loops.loop loops cid in
          if c.Loops.parent <> Some lp.Loops.id then
            err ~loc "LOOP006" "child %s does not point back to this loop"
              c.Loops.name)
        lp.Loops.loop_children)
    (Loops.all loops);
  List.rev !diags

let guarded origin f =
  try f ()
  with e ->
    [ Diag.v ~code:"VRF999" ~origin "checker crashed: %s" (Printexc.to_string e) ]

let check_ir ?lower (ssa : Ir.Ssa.t) : Diag.t list =
  let lower_diags =
    match lower with
    | Some cfg -> guarded "cfg" (fun () -> check_cfg ~origin:"cfg" cfg)
    | None -> []
  in
  let ssa_cfg_diags =
    guarded "ssa-cfg" (fun () -> check_cfg ~origin:"ssa-cfg" (Ir.Ssa.cfg ssa))
  in
  if List.exists (fun (d : Diag.t) -> d.Diag.code = "CFG001") ssa_cfg_diags then
    lower_diags @ ssa_cfg_diags
  else
    lower_diags @ ssa_cfg_diags
    @ guarded "ssa" (fun () -> check_ssa ssa)
    @ guarded "looptree" (fun () -> check_loops ssa)
