(* Deliberate IR corruption. The IR keeps instruction argument arrays
   and block terminators mutable for the rewriting passes; that same
   mutability gives the fault injector its hooks. *)

module Cfg = Ir.Cfg
module Instr = Ir.Instr

type kind = Phi_arity | Dangling_def | Bad_edge | Nondom_use

let kinds =
  [
    ("phi-arity", Phi_arity);
    ("dangling-def", Dangling_def);
    ("bad-edge", Bad_edge);
    ("nondom-use", Nondom_use);
  ]

let of_string s = List.assoc_opt s kinds
let to_string k = fst (List.find (fun (_, k') -> k' = k) kinds)

let expected_code = function
  | Phi_arity -> "SSA001"
  | Dangling_def -> "SSA005"
  | Bad_edge -> "CFG001"
  | Nondom_use -> "SSA004"

(* First instruction satisfying [p], in block order. *)
let find_instr cfg p =
  Cfg.fold_instrs cfg
    (fun acc label instr ->
      match acc with Some _ -> acc | None -> p label instr)
    None

let apply kind (ssa : Ir.Ssa.t) : (string, string) result =
  let cfg = Ir.Ssa.cfg ssa in
  let dom = Ir.Ssa.dom ssa in
  match kind with
  | Phi_arity -> (
    match
      find_instr cfg (fun _ (i : Instr.t) ->
          if i.Instr.op = Instr.Phi && Array.length i.Instr.args > 1 then Some i
          else None)
    with
    | None -> Error "no phi with more than one argument to break"
    | Some i ->
      i.Instr.args <- Array.sub i.Instr.args 0 (Array.length i.Instr.args - 1);
      Ok (Printf.sprintf "dropped the last argument of phi %%%d" i.Instr.id))
  | Dangling_def -> (
    let ghost = Cfg.num_instrs cfg + 1000 in
    match
      find_instr cfg (fun _ (i : Instr.t) ->
          if
            i.Instr.op <> Instr.Phi
            && Array.exists
                 (function Instr.Def _ -> true | _ -> false)
                 i.Instr.args
          then Some i
          else None)
    with
    | None -> Error "no instruction with a def operand"
    | Some i ->
      let j = ref (-1) in
      Array.iteri
        (fun k v ->
          if !j < 0 then
            match v with Instr.Def _ -> j := k | _ -> ())
        i.Instr.args;
      i.Instr.args.(!j) <- Instr.Def ghost;
      Ok
        (Printf.sprintf "pointed operand %d of %%%d at missing instruction %%%d"
           !j i.Instr.id ghost))
  | Bad_edge -> (
    let ghost = Cfg.num_blocks cfg + 7 in
    match
      List.find_opt
        (fun l ->
          match (Cfg.block cfg l).Cfg.term with
          | Cfg.Jump _ | Cfg.Branch _ -> true
          | Cfg.Halt -> false)
        (Cfg.labels cfg)
    with
    | None -> Error "no block with an outgoing edge"
    | Some l ->
      Cfg.set_term cfg l (Cfg.Jump ghost);
      Ok (Printf.sprintf "rewired block %d to jump to missing block %d" l ghost))
  | Nondom_use -> (
    (* A non-phi use site and a def whose block does not dominate it. *)
    let candidate =
      find_instr cfg (fun label (i : Instr.t) ->
          if i.Instr.op = Instr.Phi || Array.length i.Instr.args = 0 then None
          else
            find_instr cfg (fun dlabel (d : Instr.t) ->
                if
                  d.Instr.id <> i.Instr.id
                  && not (Ir.Dom.dominates dom dlabel label)
                then Some (i, d)
                else None))
    in
    match candidate with
    | None -> Error "no def/use pair violating dominance is constructible"
    | Some (use, def) ->
      use.Instr.args.(0) <- Instr.Def def.Instr.id;
      Ok
        (Printf.sprintf "made %%%d use %%%d, whose block does not dominate it"
           use.Instr.id def.Instr.id))
