(** The classification soundness oracle (checker family 2).

    Runs the reference interpreter over the analyzed program and, at
    every instruction execution inside a loop, compares the observed
    value against the claim the classifier made for that definition:
    closed forms (linear, polynomial, geometric, wrap-around, flip-flop
    — everything {!Analysis.Ivclass.eval_at_nest} can evaluate) are
    checked for equality at the current iteration number h; monotonic
    classes are checked for (strict) direction within each loop
    activation. A divergence is a real soundness bug in the analysis,
    never in the program under test.

    Codes: [ORA001] closed-form divergence, [ORA002] monotonicity
    violation.

    The check is bounded three ways: [iters] caps the iteration index h
    per loop (the first N iterations — divergence beyond machine-word
    overflow territory is meaningless, and closed forms that hold for N
    iterations of every loop shape the classifier handles hold
    generally); [fuel] caps total interpreted steps; and predictions
    whose exact value exceeds 2^55 are skipped, since the interpreter
    wraps native integers while the classifier is exact. *)

type result = {
  diags : Ir.Diag.t list;
  checked : int;  (** predictions actually compared *)
  vars : int;  (** distinct classified defs observed *)
  max_h : int;  (** deepest iteration index compared *)
  out_of_fuel : bool;
}

(** [check t] interprets and compares. [iters] (default unbounded) is
    the per-loop iteration cap N; [tag] labels the run in messages
    (useful when the same program is checked under several parameter
    valuations). Reporting stops after [max_diags] findings (default
    16); checking continues so the counts stay honest. *)
val check :
  ?iters:int ->
  ?fuel:int ->
  ?max_diags:int ->
  ?params:(Ir.Ident.t -> int) ->
  ?rand:(unit -> bool) ->
  ?arrays:((Ir.Ident.t * int list) * int) list ->
  ?tag:string ->
  Analysis.Driver.t ->
  result
