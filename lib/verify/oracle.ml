(* The classification soundness oracle.

   This is the production home of the differential check the test suite
   pioneered (test/helpers.ml delegates here): interpret, and at each
   instruction execution evaluate the instruction's classification at
   the current iteration number using the *live* environment for
   symbolic atoms — atoms are invariant in the loop, so their current
   values are the activation's values. *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym
module Diag = Ir.Diag

type result = {
  diags : Ir.Diag.t list;
  checked : int;
  vars : int;
  max_h : int;
  out_of_fuel : bool;
}

type mono_state = { mutable last_act : int; mutable last_v : int option }

let check ?(iters = max_int) ?(fuel = 50_000) ?(max_diags = 16)
    ?(params = fun _ -> 0) ?(rand = fun () -> false) ?(arrays = []) ?(tag = "")
    (t : Driver.t) : result =
  let ssa = Driver.ssa t in
  let loops = Ir.Ssa.loops ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let suffix = if tag = "" then "" else Printf.sprintf " [%s]" tag in
  let diags = ref [] in
  let ndiags = ref 0 in
  let report d =
    incr ndiags;
    if !ndiags <= max_diags then diags := d :: !diags
  in
  let mono : mono_state Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let seen : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let checked = ref 0 in
  let max_h = ref 0 in
  let on_instr st (instr : Ir.Instr.t) v =
    let id = instr.Ir.Instr.id in
    let label = Ir.Cfg.block_of_instr cfg id in
    match Ir.Loops.innermost loops label with
    | None -> ()
    | Some lp ->
      let h = Ir.Interp.loop_iter st lp in
      if h < iters then begin
        let lookup (a : Sym.atom) =
          match a with
          | Sym.Param x -> Some (Bignum.Rat.of_int (params x))
          | Sym.Def d ->
            Some (Bignum.Rat.of_int (Ir.Interp.value st (Ir.Instr.Def d)))
        in
        let name () = Ir.Ssa.primary_name ssa id in
        let cls = Driver.class_of t id in
        match cls with
        | Ivclass.Unknown -> ()
        | Ivclass.Monotonic m ->
          Ir.Instr.Id.Table.replace seen id ();
          incr checked;
          if h > !max_h then max_h := h;
          let ms =
            match Ir.Instr.Id.Table.find_opt mono id with
            | Some ms -> ms
            | None ->
              let ms = { last_act = -1; last_v = None } in
              Ir.Instr.Id.Table.add mono id ms;
              ms
          in
          (* Monotonicity holds within one loop activation. *)
          let act = Ir.Interp.loop_activation st lp in
          if act <> ms.last_act then ms.last_v <- None;
          (match ms.last_v with
           | Some prev ->
             let ok =
               match (m.Ivclass.dir, m.Ivclass.strict) with
               | Ivclass.Increasing, true -> v > prev
               | Ivclass.Increasing, false -> v >= prev
               | Ivclass.Decreasing, true -> v < prev
               | Ivclass.Decreasing, false -> v <= prev
             in
             if not ok then
               report
                 (Diag.v ~loc:(Diag.Var (name ())) ~code:"ORA002" ~origin:"oracle"
                    "monotonicity violated at h=%d (%d then %d)%s" h prev v suffix)
           | None -> ());
          ms.last_act <- act;
          ms.last_v <- Some v
        | cls -> (
          let iter_of outer = Some (Ir.Interp.loop_iter st outer) in
          match Ivclass.eval_at_nest lookup iter_of cls h with
          | Some predicted ->
            (* The interpreter computes in native (wrapping) integers
               while the classifier is exact; past this magnitude the
               comparison is meaningless (overflow is unspecified). *)
            let overflow_bound = Bignum.Rat.of_int (1 lsl 55) in
            if Bignum.Rat.compare (Bignum.Rat.abs predicted) overflow_bound >= 0
            then ()
            else begin
              Ir.Instr.Id.Table.replace seen id ();
              incr checked;
              if h > !max_h then max_h := h;
              if not (Bignum.Rat.equal predicted (Bignum.Rat.of_int v)) then
                report
                  (Diag.v ~loc:(Diag.Var (name ())) ~code:"ORA001" ~origin:"oracle"
                     "h=%d predicted %s, observed %d%s" h
                     (Bignum.Rat.to_string predicted)
                     v suffix)
            end
          | None -> ())
      end
  in
  let st = Ir.Interp.run ~fuel ~on_instr ~params ~rand ~arrays ssa in
  {
    diags = List.rev !diags;
    checked = !checked;
    vars = Ir.Instr.Id.Table.length seen;
    max_h = !max_h;
    out_of_fuel = st.Ir.Interp.outcome = Ir.Interp.Out_of_fuel;
  }
