(** The checked-mode façade: assembles the three checker families into
    one report with stable text and JSON renderings.

    A report is a list of parts — one per family — each carrying its
    diagnostics, a one-line summary note, and the number of individual
    checks performed (so "clean" is distinguishable from "vacuous"). The
    service engine caches each part under a digest-derived key, exactly
    like any other pass artifact; both renderings are deterministic
    functions of the part data. *)

type part = {
  family : string;  (** "structural" | "oracle" | "ranges" | "transforms" *)
  note : string;  (** one line of coverage stats *)
  checks : int;
  diags : Ir.Diag.t list;
}

type report = { parts : part list }

(** The three parts. [structural_part] also verifies the pristine
    lowered CFG when given one — this is the consumer the `lower` pass
    never had. [oracle_part] interprets under two fixed parameter
    valuations and '??' streams (deterministic, so cached text is
    byte-stable across runs and domains), bounding each loop's checked
    iterations at [iters]. *)
val structural_part : ?lower:Ir.Cfg.t -> Ir.Ssa.t -> part

val oracle_part : ?iters:int -> Analysis.Driver.t -> part

(** [ranges_part t r] checks every concrete valuation of every def
    against its reported interval ({!Range_oracle}), under the same two
    fixed runs as the classification oracle. *)
val ranges_part : ?iters:int -> Analysis.Driver.t -> Analysis.Range.t -> part

val transform_part : ?fuel:int -> Ir.Ast.program -> part

val errors : report -> int
val warnings : report -> int
val checks : report -> int

val part_to_text : part -> string

(** Text rendering: one [== family ==] section per part, diagnostics one
    per line, and a final [check: E errors, W warnings, N checks] line. *)
val to_text : report -> string

(** JSON object: [{"errors":..,"warnings":..,"checks":..,"parts":[..]}]. *)
val to_json : report -> string

(** [run src] is the whole standalone check — parse, build SSA, analyze,
    all three parts — without a service engine. *)
val run : ?iters:int -> string -> (report, string) result
