(* The range-analysis soundness oracle.

   Differential partner of [Oracle]: interpret the program and, after
   every instruction execution, assert the computed value lies inside
   the interval the range analysis reported for that def — both the
   full interval (RNG001) and the body-refined interval at the def's
   own block (RNG002). Only non-top intervals count as checks, so the
   note distinguishes "clean" from "vacuous". *)

module Driver = Analysis.Driver
module Range = Analysis.Range
module Interval = Analysis.Interval
module Diag = Ir.Diag

type result = {
  diags : Ir.Diag.t list;
  checked : int;
  vars : int;
  max_h : int;
  out_of_fuel : bool;
}

let check ?(iters = max_int) ?(fuel = 50_000) ?(max_diags = 16)
    ?(params = fun _ -> 0) ?(rand = fun () -> false) ?(arrays = []) ?(tag = "")
    (t : Driver.t) (r : Range.t) : result =
  let ssa = Driver.ssa t in
  let loops = Ir.Ssa.loops ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let suffix = if tag = "" then "" else Printf.sprintf " [%s]" tag in
  let diags = ref [] in
  let ndiags = ref 0 in
  let report d =
    incr ndiags;
    if !ndiags <= max_diags then diags := d :: !diags
  in
  let seen : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let checked = ref 0 in
  let max_h = ref 0 in
  let on_instr st (instr : Ir.Instr.t) v =
    let id = instr.Ir.Instr.id in
    let label = Ir.Cfg.block_of_instr cfg id in
    let within_iters =
      match Ir.Loops.innermost loops label with
      | None -> true
      | Some lp ->
        let h = Ir.Interp.loop_iter st lp in
        if h > !max_h then max_h := h;
        h < iters
    in
    if within_iters then begin
      let full = Range.interval_of r id in
      (* The def's own block is a use site of itself: when it executes
         below a counted exit test, the final-iteration exclusion
         applies to the fresh value too. *)
      let site = Range.interval_at r ~block:label id in
      if not (Interval.is_top full && Interval.is_top site) then begin
        Ir.Instr.Id.Table.replace seen id ();
        incr checked;
        let name () = Ir.Ssa.primary_name ssa id in
        if not (Interval.mem v full) then
          report
            (Diag.v ~loc:(Diag.Var (name ())) ~code:"RNG001" ~origin:"ranges"
               "observed %d outside interval %s%s" v (Interval.to_string full)
               suffix)
        else if not (Interval.mem v site) then
          report
            (Diag.v ~loc:(Diag.Var (name ())) ~code:"RNG002" ~origin:"ranges"
               "observed %d outside body-refined interval %s%s" v
               (Interval.to_string site) suffix)
      end
    end
  in
  let st = Ir.Interp.run ~fuel ~on_instr ~params ~rand ~arrays ssa in
  {
    diags = List.rev !diags;
    checked = !checked;
    vars = Ir.Instr.Id.Table.length seen;
    max_h = !max_h;
    out_of_fuel = st.Ir.Interp.outcome = Ir.Interp.Out_of_fuel;
  }
