(* An optimization pipeline driven entirely by the classification:

     1. LICM      — classification [Invariant] justifies hoisting;
     2. strength reduction — classification [Linear] justifies turning
                    multiplies into add chains (the transformation the
                    paper says IV analysis is classically tied to);
     3. DCE       — sweeps the dead operand chains the rewrite leaves.

   The example verifies the rewritten program against the original with
   the reference interpreter, instruction counts included.

   Run with:  dune exec examples/optimize.exe *)

let program = {|
base = n * 8 + 16
L1: for i = 0 to 99 loop
  x = n * 4
  A(i * 8 + base) = A(i * 8 + base - 8) + x
endloop
|}

let footprint ssa params =
  let st = Ir.Interp.run ~fuel:1_000_000 ~params ssa in
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare

let count_op ssa pred =
  let n = ref 0 in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      if pred i.Ir.Instr.op then incr n);
  !n

let is_mul = function Ir.Instr.Binop Ir.Ops.Mul -> true | _ -> false

let () =
  let params x = if Ir.Ident.name x = "n" then 5 else 0 in
  let reference = footprint (Ir.Ssa.of_source program) params in

  let ssa = Ir.Ssa.of_source program in
  Printf.printf "multiplies before: %d\n" (count_op ssa is_mul);

  let t = Analysis.Driver.analyze ssa in
  let hoisted = Transform.Licm.hoist t in
  Printf.printf "licm hoisted     : %d instructions\n" (List.length hoisted);

  let reduced = Transform.Strength_reduction.reduce t in
  Printf.printf "strength reduced : %d multiplies -> add chains\n" (List.length reduced);

  let removed = Transform.Dce.run (Ir.Ssa.cfg ssa) in
  Printf.printf "dce removed      : %d dead instructions\n" removed;

  Printf.printf "multiplies after : %d\n" (count_op ssa is_mul);

  (match Ir.Ssa.check ssa with
   | [] -> print_endline "ssa after rewrite: valid"
   | errs -> List.iter (fun d -> print_endline (Ir.Diag.to_string d)) errs);

  let optimized = footprint ssa params in
  Printf.printf "semantics preserved: %b\n" (reference = optimized);

  print_endline "\n--- optimized code ---";
  print_endline (Ir.Ssa.to_string ssa)
